"""On-disk analysis cache: warm whole-program runs in well under a second.

Whole-program linting re-reads every file every run — but almost nothing
changes between runs, and everything the project rules need from an
unchanged file is its :class:`~repro.lint.graph.ModuleAnalysis` summary,
its per-file rule findings and its suppression comments, all plain JSON.
So each file's full per-file result is cached as one document under
``.repro-lint-cache/``, keyed by::

    sha256(analysis-version | policy-digest | relpath | source bytes)

The key embeds everything that can change the document: edit the file,
touch the lint policy (rule scopes, layer map, protocol tables) or bump
:data:`~repro.lint.graph.ANALYSIS_VERSION` and the old entry simply
stops being addressed.  There is no mtime heuristic and no invalidation
protocol — stale entries are unreachable by construction and swept by
age.  The *project* rules (REP008–REP010) and suppression application
always run fresh over the assembled summaries; they are a few
milliseconds for this tree, so a warm run parses nothing and still
produces byte-identical findings.

Entries are written atomically (pid-suffixed temp name, then
``os.replace``) so concurrent lint runs — two CI jobs, an editor plugin
racing the CLI — can share a cache directory without torn documents.
A corrupt or unreadable entry is treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.lint.graph import ANALYSIS_VERSION

__all__ = ["AnalysisCache", "DEFAULT_CACHE_DIR"]

#: Default cache location, relative to the working directory (gitignored).
DEFAULT_CACHE_DIR = ".repro-lint-cache"

#: Entries untouched for this many seconds are swept opportunistically.
_MAX_AGE_SECONDS = 7 * 24 * 3600


class AnalysisCache:
    """Content-addressed per-file analysis documents under one directory."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(relpath: str, source: bytes, policy_digest: str) -> str:
        """Content hash addressing one file's analysis document."""
        hasher = hashlib.sha256()
        hasher.update(str(ANALYSIS_VERSION).encode("utf8"))
        hasher.update(b"\x00")
        hasher.update(policy_digest.encode("utf8"))
        hasher.update(b"\x00")
        hasher.update(relpath.encode("utf8"))
        hasher.update(b"\x00")
        hasher.update(source)
        return hasher.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached document for ``key``, or ``None`` on any miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("version") != ANALYSIS_VERSION:
            self.misses += 1
            return None
        try:
            # Freshen the entry so the age sweep spares live documents.
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return payload

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key`` (best effort)."""
        document = dict(payload)
        document["version"] = ANALYSIS_VERSION
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            # A read-only checkout or full disk degrades to cold runs.
            try:
                if tmp.exists():
                    tmp.unlink()
            except OSError:
                pass

    def sweep(self, now: float) -> int:
        """Remove entries untouched for :data:`_MAX_AGE_SECONDS`.

        ``now`` is the caller's clock reading (the cache itself never
        reads the clock, keeping this module trivially replay-safe).
        Returns the number of entries removed.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in sorted(self.root.glob("*.json")):
            try:
                if now - entry.stat().st_mtime > _MAX_AGE_SECONDS:
                    entry.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

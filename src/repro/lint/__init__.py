"""``repro-lint``: AST-based determinism & invariant checking.

Every subsystem of this repo stakes its correctness on a handful of
repo-wide invariants — coordinate-derived seeds only, atomic store
writes, byte-identical ledger replay, no dense (P, P) materialisation in
kernels, versioned checkpoint schemas, a strict architecture layer
order, effect-free jit kernels, marker-last durable writes.  Property
tests catch violations *after* they corrupt a run; this package catches
them at diff time, as machine-checked rules over the Python AST —
per-file rules over one parent-annotated tree, whole-program rules over
the project import/call graph (:mod:`repro.lint.graph`):

========  ====================================================
REP001    naked RNG outside the sanctioned seed-derivation sites
REP002    non-atomic file writes bypassing :mod:`repro.io`
REP003    non-deterministic iteration/serialisation ordering
REP004    wall-clock readings inside replay-compared payloads
REP005    dense quadratic materialisation in kernel hot paths
REP006    checkpoint-schema drift without a version bump
REP007    numpy calls inside ``@array_kernel`` bodies (use ``xp``)
REP008    module-level imports against the declared layer order
REP009    impure transitive call closure of a jit kernel root
REP010    durable writes out of blobs -> summaries -> markers order
REP011    stale ``# repro-lint: disable`` suppression comments
========  ====================================================

Use :func:`run_lint` (or :func:`lint_project` for cache accounting)
programmatically, the ``repro-lint`` console script from a shell or CI
(``--format sarif`` emits SARIF 2.1.0 for code-scanning upload; warm
runs are served from ``.repro-lint-cache/``), and ``# repro-lint:
disable=REPxxx`` comments (with a justification) to suppress a finding
at a specific line — REP011 reports any such comment that outlives its
finding.  See ``CONTRIBUTING.md`` for the rationale behind each rule.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import (
    Finding,
    LintError,
    LintResult,
    LintStats,
    lint_paths,
    lint_project,
    lint_source,
    run_lint,
)
from repro.lint.rules import PROJECT_RULES, RULES, get_project_rules, get_rules

__all__ = [
    "Finding",
    "LintConfig",
    "LintError",
    "LintResult",
    "LintStats",
    "PROJECT_RULES",
    "RULES",
    "get_project_rules",
    "get_rules",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_config",
    "run_lint",
]

"""``repro-lint``: AST-based determinism & invariant checking.

Every subsystem of this repo stakes its correctness on a handful of
repo-wide invariants — coordinate-derived seeds only, atomic store
writes, byte-identical ledger replay, no dense (P, P) materialisation in
kernels, versioned checkpoint schemas.  Property tests catch violations
*after* they corrupt a run; this package catches them at diff time, as
machine-checked rules over the Python AST:

========  ====================================================
REP001    naked RNG outside the sanctioned seed-derivation sites
REP002    non-atomic file writes bypassing :mod:`repro.io`
REP003    non-deterministic iteration/serialisation ordering
REP004    wall-clock readings inside replay-compared payloads
REP005    dense quadratic materialisation in kernel hot paths
REP006    checkpoint-schema drift without a version bump
========  ====================================================

Use :func:`run_lint` programmatically, the ``repro-lint`` console script
from a shell or CI, and ``# repro-lint: disable=REPxxx`` comments (with a
justification) to suppress a finding at a specific line.  See
``CONTRIBUTING.md`` for the rationale behind each rule.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import (
    Finding,
    LintError,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.lint.rules import RULES, get_rules

__all__ = [
    "Finding",
    "LintConfig",
    "LintError",
    "RULES",
    "get_rules",
    "lint_paths",
    "lint_source",
    "load_config",
    "run_lint",
]

"""Repo-level configuration of the lint rules.

The defaults below *are* the repo policy: which subtrees each rule
patrols, which modules are sanctioned exceptions (the seed-derivation
sites, the atomic-write helper) and the pinned checkpoint-schema digest
that rule REP006 compares against.  A ``[tool.repro-lint]`` table in
``pyproject.toml`` can extend the allowlists or disable rules wholesale::

    [tool.repro-lint]
    disable = ["REP005"]

    [tool.repro-lint.REP001]
    allow = ["repro/experiments/fuzzing.py"]

Paths are package-relative POSIX prefixes (``repro/runtime/``) or full
module paths (``repro/utils/rng.py``); they match against the path
suffix starting at the ``repro`` package directory, so the same config
works no matter where the checkout lives.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

__all__ = [
    "RuleConfig",
    "LintConfig",
    "DEFAULT_RULE_CONFIG",
    "CHECKPOINT_SCHEMA",
    "load_config",
    "package_relpath",
]


#: The pinned checkpoint serialisation schema rule REP006 enforces.
#: ``npz`` lists the array keys of ``checkpoint.npz``; ``json`` the keys
#: of ``checkpoint.json``.  Adding, removing or renaming a field in
#: :mod:`repro.runtime.checkpoint` without updating this pin **and**
#: bumping ``CHECKPOINT_FORMAT_VERSION`` fails the lint — on-disk schema
#: changes must be conscious, versioned decisions, or resumed runs break.
CHECKPOINT_SCHEMA: Dict[str, Any] = {
    "format_version": 1,
    "npz": (
        "acceptance_history",
        "closure",
        "coords",
        "fitness",
        "scores",
        "temperature_history",
        "torsions",
    ),
    "json": (
        "extra",
        "format_version",
        "iteration",
        "npz_sha256",
        "rng",
        "seed",
        "temperature",
    ),
}


@dataclasses.dataclass(frozen=True)
class RuleConfig:
    """Per-rule policy: where it patrols and which modules are exempt."""

    #: Path prefixes the rule applies to; ``()`` means the whole tree.
    scope: Tuple[str, ...] = ()
    #: Path prefixes exempt from the rule (sanctioned implementation sites).
    allow: Tuple[str, ...] = ()
    enabled: bool = True

    def applies_to(self, relpath: str) -> bool:
        """Whether the rule patrols the module at package-relative ``relpath``."""
        if not self.enabled:
            return False
        if self.scope and not any(relpath.startswith(p) for p in self.scope):
            return False
        return not any(relpath.startswith(p) for p in self.allow)


#: The repo policy, rule by rule.
DEFAULT_RULE_CONFIG: Dict[str, RuleConfig] = {
    # RNG entropy may only be drawn through the SeedSequence-derivation
    # sites; everything else must receive a Generator from its caller.
    "REP001": RuleConfig(
        allow=(
            "repro/utils/rng.py",
            "repro/runtime/spec.py",
            "repro/islands/policy.py",
        )
    ),
    # Durable writes in the store-backed subsystems must go through the
    # atomic helpers of repro/io.py (which lives outside the scope).
    "REP002": RuleConfig(
        scope=("repro/runtime/", "repro/islands/", "repro/api/", "repro/serve/"),
    ),
    # Deterministic ordering everywhere; the serialisation half of the
    # rule (json.dumps needs sort_keys=True) patrols the store-backed
    # subsystems plus the shared IO helper.
    "REP003": RuleConfig(),
    # Wall-clock readings may never reach replay-compared payloads.  The
    # modules listed in WALLCLOCK_FREE_MODULES must be wall-clock free in
    # their entirety; elsewhere only payload call sites are patrolled.
    "REP004": RuleConfig(
        scope=("repro/runtime/", "repro/islands/", "repro/api/", "repro/serve/"),
    ),
    # Kernel hot paths must stream through the pairwise chunking helpers
    # instead of materialising dense (P, P) intermediates.
    "REP005": RuleConfig(
        scope=("repro/scoring/", "repro/moscem/", "repro/simt/"),
    ),
    # Checkpoint-schema drift gate; patrols exactly one module.
    "REP006": RuleConfig(scope=("repro/runtime/checkpoint.py",)),
    # Functions registered with @array_kernel must do all array math
    # through their xp namespace parameter so the same kernel body
    # compiles under every backend tier.
    "REP007": RuleConfig(
        scope=(
            "repro/scoring/",
            "repro/moscem/",
            "repro/geometry/",
            "repro/closure/",
            "repro/xp/",
        ),
    ),
}

#: Modules that must contain no wall-clock reading at all (REP004): their
#: outputs are replay-compared byte-for-byte.
WALLCLOCK_FREE_MODULES: Tuple[str, ...] = (
    "repro/runtime/checkpoint.py",
    "repro/islands/broker.py",
    "repro/islands/policy.py",
)


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """The resolved configuration the engine runs with."""

    rules: Mapping[str, RuleConfig] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_RULE_CONFIG)
    )
    wallclock_free: Tuple[str, ...] = WALLCLOCK_FREE_MODULES
    checkpoint_schema: Mapping[str, Any] = dataclasses.field(
        default_factory=lambda: dict(CHECKPOINT_SCHEMA)
    )

    def rule(self, code: str) -> RuleConfig:
        """The policy of rule ``code`` (default-enabled if unlisted)."""
        return self.rules.get(code, RuleConfig())


def package_relpath(path: Union[str, Path]) -> str:
    """Path suffix starting at the ``repro`` package directory.

    ``/checkout/src/repro/runtime/store.py`` → ``repro/runtime/store.py``.
    Paths outside the package (fixtures, scratch files) are returned as
    given, so synthetic test filenames like ``repro/runtime/x.py`` work.
    """
    posix = Path(path).as_posix()
    marker = "/repro/"
    index = posix.rfind(marker)
    if index >= 0:
        return posix[index + 1 :]
    return posix.lstrip("/")


def _as_tuple(value: Any, context: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(v, str) for v in value
    ):
        raise ValueError(f"{context} must be a list of strings, got {value!r}")
    return tuple(value)


def load_config(pyproject: Optional[Union[str, Path]] = None) -> LintConfig:
    """Resolve the lint configuration, merging ``[tool.repro-lint]``.

    ``pyproject`` names a TOML file to read overrides from; ``None``
    (or a missing file, or a Python without :mod:`tomllib`) yields the
    built-in defaults.  Overrides may ``disable`` rules and *extend*
    per-rule ``allow`` / ``scope`` lists — the built-in policy cannot be
    silently narrowed, only explicitly relaxed where the table says so.
    """
    rules = dict(DEFAULT_RULE_CONFIG)
    if pyproject is None:
        return LintConfig(rules=rules)
    path = Path(pyproject)
    if not path.is_file():
        return LintConfig(rules=rules)
    try:
        import tomllib
    except ImportError:  # Python < 3.11: defaults only
        return LintConfig(rules=rules)
    with open(path, "rb") as handle:
        table = tomllib.load(handle).get("tool", {}).get("repro-lint", {})
    for code in _as_tuple(table.get("disable", ()), "repro-lint disable"):
        base = rules.get(code, RuleConfig())
        rules[code] = dataclasses.replace(base, enabled=False)
    for code, override in table.items():
        if not isinstance(override, dict):
            continue
        base = rules.get(code, RuleConfig())
        rules[code] = dataclasses.replace(
            base,
            allow=base.allow
            + _as_tuple(override.get("allow", ()), f"{code} allow"),
            scope=base.scope
            + _as_tuple(override.get("scope", ()), f"{code} scope"),
        )
    return LintConfig(rules=rules)

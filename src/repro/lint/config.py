"""Repo-level configuration of the lint rules.

The defaults below *are* the repo policy: which subtrees each rule
patrols, which modules are sanctioned exceptions (the seed-derivation
sites, the atomic-write helper) and the pinned checkpoint-schema digest
that rule REP006 compares against.  A ``[tool.repro-lint]`` table in
``pyproject.toml`` can extend the allowlists or disable rules wholesale::

    [tool.repro-lint]
    disable = ["REP005"]

    [tool.repro-lint.REP001]
    allow = ["repro/experiments/fuzzing.py"]

Paths are package-relative POSIX prefixes (``repro/runtime/``) or full
module paths (``repro/utils/rng.py``); they match against the path
suffix starting at the ``repro`` package directory, so the same config
works no matter where the checkout lives.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

__all__ = [
    "RuleConfig",
    "LintConfig",
    "DEFAULT_RULE_CONFIG",
    "CHECKPOINT_SCHEMA",
    "LAYER_BANDS",
    "DURABLE_MARKERS",
    "DURABLE_SUMMARIES",
    "PROTOCOL_TRANSIENT",
    "load_config",
    "package_relpath",
]


#: The pinned checkpoint serialisation schema rule REP006 enforces.
#: ``npz`` lists the array keys of ``checkpoint.npz``; ``json`` the keys
#: of ``checkpoint.json``.  Adding, removing or renaming a field in
#: :mod:`repro.runtime.checkpoint` without updating this pin **and**
#: bumping ``CHECKPOINT_FORMAT_VERSION`` fails the lint — on-disk schema
#: changes must be conscious, versioned decisions, or resumed runs break.
CHECKPOINT_SCHEMA: Dict[str, Any] = {
    "format_version": 1,
    "npz": (
        "acceptance_history",
        "closure",
        "coords",
        "fitness",
        "scores",
        "temperature_history",
        "torsions",
    ),
    "json": (
        "extra",
        "format_version",
        "iteration",
        "npz_sha256",
        "rng",
        "seed",
        "temperature",
    ),
}


#: The architecture layer order rule REP008 enforces (lower band = lower
#: layer).  A module-level import may only point to the *same or a lower*
#: band; function-local (lazy) imports are the sanctioned cycle-breakers
#: and are exempt.  Keys are the top-level layering units returned by
#: :func:`repro.lint.graph.package_of` (the first sub-package under
#: ``repro``, or ``repro`` itself for the root ``__init__``).  The
#: ``lint`` unit is absent on purpose: it is special-cased to import only
#: the standard library and itself, so it can never join a cycle with
#: the code it analyses.
LAYER_BANDS: Dict[str, int] = {
    # band 0: leaf utilities with no intra-project imports
    "constants": 0,
    "utils": 0,
    "io": 0,
    "config": 0,
    # band 1: the array-API facade (pure dispatch over namespaces) and
    # the telemetry subsystem (duck-typed over the store, so every layer
    # above can instrument itself through it)
    "xp": 1,
    "obs": 1,
    # band 2: domain data + math
    "protein": 2,
    "geometry": 2,
    "simt": 2,
    # band 3: target/loop definitions
    "loops": 3,
    # band 4: the kernel subsystems
    "scoring": 4,
    "closure": 4,
    "moscem": 4,
    # band 5: result post-processing
    "analysis": 5,
    # band 6: backend assembly
    "backends": 6,
    # band 7: island migration (rides the store)
    "islands": 7,
    # band 8: the sharded runtime
    "runtime": 8,
    # band 9: public surfaces
    "api": 9,
    "serve": 9,
    # band 10: entry points and the package root
    "experiments": 10,
    "cli": 10,
    "repro": 10,
}

#: Durable-protocol filename classes (rule REP010).  *Markers* are the
#: commit points of a multi-file write — readers treat their presence as
#: "every sibling payload is complete", so they must be written last and
#: always through a JSON helper (``write_json_atomic`` for republishable
#: markers, ``create_json_exclusive`` for claim markers).
DURABLE_MARKERS: Tuple[str, ...] = (
    "entry.json",
    "manifest.json",
    "checkpoint.json",
)

#: Summary payloads: JSON documents describing sibling blobs, written
#: after the blobs but before (or as) nothing — only markers may follow.
DURABLE_SUMMARIES: Tuple[str, ...] = (
    "result.json",
    "summary.json",
)

#: Transient channel files (status, leases, cancellation flags, and the
#: telemetry documents of :mod:`repro.obs` — heartbeats and span traces):
#: they carry no durability promise, are rewritten freely, and are exempt
#: from the ordering state machine.  This list is also the policy pin for
#: the observability invariant: telemetry rides the status channel ONLY —
#: a heartbeat or trace filename appearing here must never also appear in
#: DURABLE_MARKERS/DURABLE_SUMMARIES, and nothing from repro/obs/ may
#: reach a journal payload or a cache key (REP004 patrols repro/obs/).
PROTOCOL_TRANSIENT: Tuple[str, ...] = (
    "status.json",
    "lease.json",
    "cancelled.json",
    "heartbeat.json",
    "trace.json",
)


@dataclasses.dataclass(frozen=True)
class RuleConfig:
    """Per-rule policy: where it patrols and which modules are exempt."""

    #: Path prefixes the rule applies to; ``()`` means the whole tree.
    scope: Tuple[str, ...] = ()
    #: Path prefixes exempt from the rule (sanctioned implementation sites).
    allow: Tuple[str, ...] = ()
    enabled: bool = True

    def applies_to(self, relpath: str) -> bool:
        """Whether the rule patrols the module at package-relative ``relpath``."""
        if not self.enabled:
            return False
        if self.scope and not any(relpath.startswith(p) for p in self.scope):
            return False
        return not any(relpath.startswith(p) for p in self.allow)


#: The repo policy, rule by rule.
DEFAULT_RULE_CONFIG: Dict[str, RuleConfig] = {
    # RNG entropy may only be drawn through the SeedSequence-derivation
    # sites; everything else must receive a Generator from its caller.
    "REP001": RuleConfig(
        allow=(
            "repro/utils/rng.py",
            "repro/runtime/spec.py",
            "repro/islands/policy.py",
        )
    ),
    # Durable writes in the store-backed subsystems must go through the
    # atomic helpers of repro/io.py (which lives outside the scope).
    "REP002": RuleConfig(
        scope=(
            "repro/runtime/",
            "repro/islands/",
            "repro/api/",
            "repro/serve/",
            "repro/obs/",
        ),
    ),
    # Deterministic ordering everywhere; the serialisation half of the
    # rule (json.dumps needs sort_keys=True) patrols the store-backed
    # subsystems plus the shared IO helper.
    "REP003": RuleConfig(),
    # Wall-clock readings may never reach replay-compared payloads.  The
    # modules listed in WALLCLOCK_FREE_MODULES must be wall-clock free in
    # their entirety; elsewhere only payload call sites are patrolled.
    "REP004": RuleConfig(
        scope=(
            "repro/runtime/",
            "repro/islands/",
            "repro/api/",
            "repro/serve/",
            "repro/obs/",
        ),
    ),
    # Kernel hot paths must stream through the pairwise chunking helpers
    # instead of materialising dense (P, P) intermediates.
    "REP005": RuleConfig(
        scope=("repro/scoring/", "repro/moscem/", "repro/simt/"),
    ),
    # Checkpoint-schema drift gate; patrols exactly one module.
    "REP006": RuleConfig(scope=("repro/runtime/checkpoint.py",)),
    # Functions registered with @array_kernel must do all array math
    # through their xp namespace parameter so the same kernel body
    # compiles under every backend tier.
    "REP007": RuleConfig(
        scope=(
            "repro/scoring/",
            "repro/moscem/",
            "repro/geometry/",
            "repro/closure/",
            "repro/xp/",
        ),
    ),
    # Module-level imports must respect the declared layer order
    # (LAYER_BANDS); function-local imports are the sanctioned
    # cycle-breakers and are exempt.  Whole-tree rule.
    "REP008": RuleConfig(),
    # The transitive call closure of every @array_kernel body and every
    # maybe_jit/maybe_vmap-wrapped function must be effect-free.
    # Whole-tree rule: kernels are defined under scoring/geometry/... but
    # jit roots appear wherever the facade is used.
    "REP009": RuleConfig(),
    # Durable multi-file writes must sequence blobs -> summaries ->
    # markers within each function (transitively through intra-module
    # helpers); patrols the store-backed subsystems.
    "REP010": RuleConfig(
        scope=("repro/serve/", "repro/runtime/", "repro/islands/", "repro/obs/"),
    ),
    # Suppression hygiene: a disable comment whose codes no longer
    # suppress anything is itself a finding.  Whole-tree rule.
    "REP011": RuleConfig(),
}

#: Modules that must contain no wall-clock reading at all (REP004): their
#: outputs are replay-compared byte-for-byte.
WALLCLOCK_FREE_MODULES: Tuple[str, ...] = (
    "repro/runtime/checkpoint.py",
    "repro/islands/broker.py",
    "repro/islands/policy.py",
)


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """The resolved configuration the engine runs with."""

    rules: Mapping[str, RuleConfig] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_RULE_CONFIG)
    )
    wallclock_free: Tuple[str, ...] = WALLCLOCK_FREE_MODULES
    checkpoint_schema: Mapping[str, Any] = dataclasses.field(
        default_factory=lambda: dict(CHECKPOINT_SCHEMA)
    )
    layer_bands: Mapping[str, int] = dataclasses.field(
        default_factory=lambda: dict(LAYER_BANDS)
    )
    durable_markers: Tuple[str, ...] = DURABLE_MARKERS
    durable_summaries: Tuple[str, ...] = DURABLE_SUMMARIES
    protocol_transient: Tuple[str, ...] = PROTOCOL_TRANSIENT

    def rule(self, code: str) -> RuleConfig:
        """The policy of rule ``code`` (default-enabled if unlisted)."""
        return self.rules.get(code, RuleConfig())

    def policy_digest(self) -> str:
        """Stable hash of everything that influences findings.

        Part of the analysis-cache key (:mod:`repro.lint.cache`): any
        policy change — a rescoped rule, a new allowlist entry, an edited
        layer map — invalidates every cached per-file result at once.
        """
        import hashlib
        import json

        payload = {
            "rules": {
                code: dataclasses.astuple(rule)
                for code, rule in sorted(self.rules.items())
            },
            "wallclock_free": self.wallclock_free,
            "checkpoint_schema": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in self.checkpoint_schema.items()
            },
            "layer_bands": dict(self.layer_bands),
            "durable_markers": self.durable_markers,
            "durable_summaries": self.durable_summaries,
            "protocol_transient": self.protocol_transient,
        }
        encoded = json.dumps(payload, sort_keys=True).encode("utf8")
        return hashlib.sha256(encoded).hexdigest()


def package_relpath(path: Union[str, Path]) -> str:
    """Path suffix starting at the ``repro`` package directory.

    ``/checkout/src/repro/runtime/store.py`` → ``repro/runtime/store.py``.
    Paths outside the package (fixtures, scratch files) are returned as
    given, so synthetic test filenames like ``repro/runtime/x.py`` work.
    """
    posix = Path(path).as_posix()
    marker = "/repro/"
    index = posix.rfind(marker)
    if index >= 0:
        return posix[index + 1 :]
    return posix.lstrip("/")


def _as_tuple(value: Any, context: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(v, str) for v in value
    ):
        raise ValueError(f"{context} must be a list of strings, got {value!r}")
    return tuple(value)


def load_config(pyproject: Optional[Union[str, Path]] = None) -> LintConfig:
    """Resolve the lint configuration, merging ``[tool.repro-lint]``.

    ``pyproject`` names a TOML file to read overrides from; ``None``
    (or a missing file, or a Python without :mod:`tomllib`) yields the
    built-in defaults.  Overrides may ``disable`` rules and *extend*
    per-rule ``allow`` / ``scope`` lists — the built-in policy cannot be
    silently narrowed, only explicitly relaxed where the table says so.
    """
    rules = dict(DEFAULT_RULE_CONFIG)
    if pyproject is None:
        return LintConfig(rules=rules)
    path = Path(pyproject)
    if not path.is_file():
        return LintConfig(rules=rules)
    try:
        import tomllib
    except ImportError:  # Python < 3.11: defaults only
        return LintConfig(rules=rules)
    with open(path, "rb") as handle:
        table = tomllib.load(handle).get("tool", {}).get("repro-lint", {})
    for code in _as_tuple(table.get("disable", ()), "repro-lint disable"):
        base = rules.get(code, RuleConfig())
        rules[code] = dataclasses.replace(base, enabled=False)
    for code, override in table.items():
        if not isinstance(override, dict):
            continue
        base = rules.get(code, RuleConfig())
        rules[code] = dataclasses.replace(
            base,
            allow=base.allow
            + _as_tuple(override.get("allow", ()), f"{code} allow"),
            scope=base.scope
            + _as_tuple(override.get("scope", ()), f"{code} scope"),
        )
    return LintConfig(rules=rules)

"""REP006 — checkpoint-schema drift without a version bump.

``checkpoint.npz`` / ``checkpoint.json`` are the resume contract: a field
added to :func:`repro.runtime.checkpoint.save_checkpoint` without bumping
``CHECKPOINT_FORMAT_VERSION`` means old checkpoints resume with silently
missing state — the worst failure mode a determinism-first runtime can
have, because the run completes and is simply wrong.

The rule statically extracts the serialised field names from the
``arrays`` and ``payload`` dict literals of ``save_checkpoint`` (plus
``arrays["..."] = ...`` augmentations) and the
``CHECKPOINT_FORMAT_VERSION`` constant, then compares all three against
the pin in :data:`repro.lint.config.CHECKPOINT_SCHEMA`.  Changing the
schema therefore requires touching three places on purpose: the writer,
the version constant, and the pin — a conscious, reviewable decision
instead of a drive-by field.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional, Set, Tuple

from repro.lint.rules.base import Rule, Violation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["CheckpointSchemaRule"]


def _literal_dict_keys(node: ast.Dict) -> Set[str]:
    return {
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _extract(
    tree: ast.AST,
) -> Tuple[Optional[int], Optional[Set[str]], Optional[Set[str]], int]:
    """``(format_version, npz_keys, json_keys, anchor_line)`` of the writer."""
    version: Optional[int] = None
    npz_keys: Optional[Set[str]] = None
    json_keys: Optional[Set[str]] = None
    anchor = 1

    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "CHECKPOINT_FORMAT_VERSION"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
            ):
                version = value.value

    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "save_checkpoint":
            anchor = node.lineno
            for inner in ast.walk(node):
                if isinstance(inner, ast.Assign):
                    for target in inner.targets:
                        if (
                            isinstance(target, ast.Name)
                            and isinstance(inner.value, ast.Dict)
                        ):
                            if target.id == "arrays":
                                npz_keys = _literal_dict_keys(inner.value)
                            elif target.id == "payload":
                                json_keys = _literal_dict_keys(inner.value)
                        elif (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "arrays"
                            and isinstance(target.slice, ast.Constant)
                            and isinstance(target.slice.value, str)
                            and npz_keys is not None
                        ):
                            npz_keys.add(target.slice.value)
            break
    return version, npz_keys, json_keys, anchor


class CheckpointSchemaRule(Rule):
    code = "REP006"
    name = "checkpoint-schema-drift"
    summary = (
        "checkpoint serialisation fields must match the pinned schema; "
        "changes require a CHECKPOINT_FORMAT_VERSION bump and a new pin"
    )

    def check(
        self, tree: ast.AST, relpath: str, config: "LintConfig"
    ) -> Iterator[Violation]:
        pin = config.checkpoint_schema
        pinned_version = int(pin["format_version"])
        pinned_npz = set(pin["npz"])
        pinned_json = set(pin["json"])
        version, npz_keys, json_keys, anchor = _extract(tree)

        remedy = (
            "bump CHECKPOINT_FORMAT_VERSION and update CHECKPOINT_SCHEMA in "
            "repro/lint/config.py"
        )
        if version is None or npz_keys is None or json_keys is None:
            yield (
                anchor,
                0,
                "cannot statically extract the checkpoint schema (expected "
                "`arrays = {...}` / `payload = {...}` dict literals in "
                "save_checkpoint and a literal CHECKPOINT_FORMAT_VERSION); "
                "restore the declarative form so drift stays checkable",
            )
            return
        if version != pinned_version:
            yield (
                anchor,
                0,
                f"CHECKPOINT_FORMAT_VERSION is {version} but the lint pin "
                f"records {pinned_version}; {remedy} together",
            )
        for label, found, pinned in (
            ("npz", npz_keys, pinned_npz),
            ("json", json_keys, pinned_json),
        ):
            added = sorted(found - pinned)
            removed = sorted(pinned - found)
            if added or removed:
                detail = []
                if added:
                    detail.append(f"added {added}")
                if removed:
                    detail.append(f"removed {removed}")
                yield (
                    anchor,
                    0,
                    f"checkpoint {label} schema drifted ({'; '.join(detail)}) "
                    f"— old checkpoints would resume wrongly; {remedy}",
                )

"""REP007 — ported kernels must do their array math through ``xp``.

The :mod:`repro.xp` facade's contract is that a generic kernel — any
function registered with :func:`repro.xp.dispatch.array_kernel` — runs
unchanged on every namespace it is bound to.  A direct ``np.`` call
inside such a function silently pins that operation to numpy: under the
jax tier the call becomes a trace-time host round trip (or a crash on a
traced argument), and the "one kernel codebase" property is lost.

Flags, inside ``scoring/``, ``moscem/``, ``geometry/``, ``closure/`` and
``xp/``: any ``np.<attr>`` / ``numpy.<attr>`` access lexically inside a
function decorated with ``@array_kernel``.  Pure scalar constants
(``np.pi``, ``np.inf``, ``np.nan``, ``np.e``, ``np.newaxis``) are allowed
— they are plain Python floats/sentinels, identical under every
namespace.

Host orchestration (block loops, totals buffers, the environment cell
grid) is *supposed* to be numpy and lives outside the decorated
functions, so it is never flagged.  A genuinely namespace-independent
call inside a kernel can be suppressed with
``# repro-lint: disable=REP007`` and a justification naming why the
operation cannot trace.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.rules.base import Rule, Violation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["XpFacadeRule"]

#: Scalar constants that are identical under every namespace.
_SCALAR_CONSTANTS = frozenset({"pi", "e", "inf", "nan", "newaxis", "euler_gamma"})

#: Names the numpy module is conventionally imported as.
_NUMPY_NAMES = frozenset({"np", "numpy"})


def _dotted(node: ast.AST) -> str:
    """Dotted name of an expression (``""`` when it is not a plain path)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_array_kernel_decorator(decorator: ast.expr) -> bool:
    """Whether a decorator expression is ``array_kernel`` (bare or called)."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    dotted = _dotted(target)
    return dotted.split(".")[-1] == "array_kernel"


class XpFacadeRule(Rule):
    code = "REP007"
    name = "numpy-in-kernel"
    summary = (
        "functions registered with @array_kernel must do all array math "
        "through their xp namespace parameter, not numpy directly"
    )

    def check(
        self, tree: ast.AST, relpath: str, config: "LintConfig"
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(_is_array_kernel_decorator(d) for d in node.decorator_list):
                continue
            yield from self._check_kernel(node)

    def _check_kernel(self, fn: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Attribute):
                continue
            if not (
                isinstance(node.value, ast.Name)
                and node.value.id in _NUMPY_NAMES
            ):
                continue
            if node.attr in _SCALAR_CONSTANTS:
                continue
            root = node.value.id
            yield (
                node.lineno,
                node.col_offset,
                f"`{root}.{node.attr}` inside @array_kernel function "
                f"`{fn.name}` pins the operation to numpy; use the `xp` "
                "namespace parameter so the kernel compiles under every "
                "backend tier",
            )

"""REP010: durable multi-file writes must sequence blobs -> summaries -> markers.

Every multi-file artefact in the store (cache entries, run directories,
checkpoints) follows one recovery protocol, documented in CONTRIBUTING
since PR 7: write the bulk payloads first, then the JSON summaries that
describe them, and only then the *marker* whose presence tells a reader
"everything here is complete".  A crash between any two steps leaves a
directory readers ignore; reverse any two steps and a crash manufactures
a corrupt-but-trusted artefact.

The rule casts that protocol as a rank order over the
:mod:`repro.io` helper calls in each function:

====  ======================================  =========================
rank  filename class                          helpers
====  ======================================  =========================
0     bulk blobs (anything not below)         ``write_bytes_atomic``,
                                              ``write_npz_atomic``,
                                              ``atomic_write``
1     summaries (``result.json``, ...)        ``write_json_atomic``
      and unresolved JSON targets
2     markers (``entry.json``,                ``write_json_atomic``,
      ``manifest.json``, ``checkpoint.json``) ``create_json_exclusive``
      and every exclusive claim
====  ======================================  =========================

Within one function the rank sequence (in statement order) must be
non-decreasing.  Calls to other project functions carry the callee's
transitive rank, computed to fixpoint over the call graph — so
``save_shard_result`` calling a decoy-writing helper before its
``result.json`` is checked exactly as if the npz write were inlined.
A callee that itself spans multiple ranks (``save_checkpoint`` writing
npz **and** json) is a complete, separately-checked transaction over
its own artefact and imposes no constraint at the call site; calls into
:mod:`repro.io` are the protocol primitives themselves and are modelled
by their direct write sites only.
Transient channel files (``status.json``, leases, cancellation flags)
are exempt: they promise nothing durable.  Markers additionally must be
written through a JSON helper — a marker produced by a bytes write
bypasses the sorted-keys canonical form every replay comparison relies
on.

Filenames are resolved conservatively (string literals, ``X / "name"``
path tails, class/module string constants, single-assignment locals);
an unresolvable JSON target ranks 1, which still catches the dangerous
reversal (marker or summary before blob) without guessing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.lint.graph import FunctionInfo, ProjectGraph, WriteSite
from repro.lint.rules.base import ProjectRule, ProjectViolation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["WriteProtocolRule"]

_RANK_LABEL = {0: "blob", 1: "summary", 2: "marker"}


class WriteProtocolRule(ProjectRule):
    code = "REP010"
    name = "write-protocol"
    summary = (
        "durable writes must sequence blobs -> summaries -> markers "
        "(marker-last, transitively through helpers)"
    )

    def check_project(
        self, graph: ProjectGraph, config: "LintConfig"
    ) -> Iterator[ProjectViolation]:
        intervals = self._rank_intervals(graph, config)
        for name in sorted(graph.functions):
            analysis, info = graph.functions[name]
            yield from self._check_function(
                name, analysis.relpath, info, graph, config, intervals
            )

    # -- per-function state machine --------------------------------------

    def _check_function(
        self,
        name: str,
        relpath: str,
        info: FunctionInfo,
        graph: ProjectGraph,
        config: "LintConfig",
        intervals: Dict[str, Tuple[int, int]],
    ) -> Iterator[ProjectViolation]:
        short = name.rsplit(".", 1)[-1]
        # Events in statement order: direct writes and calls that
        # transitively write, each carrying a rank interval.
        events: List[Tuple[int, int, int, int, str]] = []
        for site in info.writes:
            ranked = self._rank(site, config)
            if ranked is None:
                continue
            rank, label, bad = ranked
            if bad:
                yield (
                    relpath,
                    site.line,
                    site.col,
                    f"`{short}` writes marker `{site.filename}` via "
                    f"`{site.helper}`: markers must go through a JSON "
                    "helper (write_json_atomic / create_json_exclusive) "
                    "so their canonical sorted-keys form is preserved",
                )
                continue
            events.append((site.line, site.col, rank, rank, label))
        for call in info.calls:
            target = graph.resolve_function(call.target)
            if target is None or target == name:
                continue
            if target.startswith("repro.io."):
                # The helpers themselves: already modelled as direct
                # write sites; their internals are implementation.
                continue
            interval = intervals.get(target)
            if interval is None:
                continue
            lo, hi = interval
            if lo != hi:
                # The callee runs a complete multi-rank protocol of its
                # own (e.g. save_checkpoint): a self-contained, itself-
                # checked transaction over its own artefact, imposing no
                # ordering constraint at this call site.
                continue
            label = f"call to `{target.rsplit('.', 1)[-1]}` (writes {_RANK_LABEL[lo]})"
            events.append((call.line, 0, lo, hi, label))

        events.sort(key=lambda e: (e[0], e[1]))
        high = -1
        high_label = ""
        high_line = 0
        for line, col, lo, hi, label in events:
            if lo < high:
                yield (
                    relpath,
                    line,
                    col,
                    f"`{short}` writes {_RANK_LABEL[lo]}-rank {label} after "
                    f"{_RANK_LABEL[high]}-rank {high_label} (line {high_line}): "
                    "durable writes must sequence blobs -> summaries -> "
                    "markers so a crash can never leave a trusted marker "
                    "next to missing payloads",
                )
            if hi > high:
                high = hi
                high_label = label
                high_line = line

    # -- rank assignment --------------------------------------------------

    @staticmethod
    def _rank(
        site: WriteSite, config: "LintConfig"
    ) -> Optional[Tuple[int, str, bool]]:
        """(rank, event label, marker-via-blob-helper?) or None if exempt."""
        filename = site.filename
        if filename and filename in config.protocol_transient:
            return None
        is_marker = bool(filename) and filename in config.durable_markers
        label = f"`{filename}`" if filename else f"`{site.helper}(...)`"
        if site.helper == "create_json_exclusive":
            return (2, label, False)
        if site.helper == "write_json_atomic":
            if is_marker:
                return (2, label, False)
            return (1, label, False)
        # bytes / npz / generic atomic writers
        if is_marker:
            return (2, label, True)
        return (0, label, False)

    # -- transitive rank intervals ----------------------------------------

    def _rank_intervals(
        self, graph: ProjectGraph, config: "LintConfig"
    ) -> Dict[str, Tuple[int, int]]:
        """Fixpoint: function -> (min, max) rank it transitively writes."""
        intervals: Dict[str, Tuple[int, int]] = {}
        for name in graph.functions:
            _, info = graph.functions[name]
            ranks = [
                ranked[0]
                for ranked in (self._rank(s, config) for s in info.writes)
                if ranked is not None and not ranked[2]
            ]
            if ranks:
                intervals[name] = (min(ranks), max(ranks))
        # Propagate through call edges until stable (the call graph is
        # shallow; the bound only guards against pathological recursion).
        for _ in range(len(graph.functions) + 1):
            changed = False
            for name in sorted(graph.functions):
                _, info = graph.functions[name]
                lo_hi = intervals.get(name)
                for call in info.calls:
                    target = graph.resolve_function(call.target)
                    if target is None or target == name:
                        continue
                    if target.startswith("repro.io."):
                        continue
                    callee = intervals.get(target)
                    # Only single-rank helpers propagate; a multi-rank
                    # callee is an opaque, self-contained transaction.
                    if callee is None or callee[0] != callee[1]:
                        continue
                    if lo_hi is None:
                        lo_hi = callee
                    else:
                        lo_hi = (
                            min(lo_hi[0], callee[0]),
                            max(lo_hi[1], callee[1]),
                        )
                if lo_hi is not None and lo_hi != intervals.get(name):
                    intervals[name] = lo_hi
                    changed = True
            if not changed:
                break
        return intervals

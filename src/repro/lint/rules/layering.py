"""REP008: module-level imports must respect the declared layer order.

The architecture is a strict band stack
(:data:`repro.lint.config.LAYER_BANDS`): utilities at the bottom, the
``xp`` facade above them, domain math, kernels, the runtime, and the
public ``api``/``serve`` surfaces on top.  A module-level import may
point sideways (same band) or down — never up.  Function-local (lazy)
imports are exempt by design: they are the repo's sanctioned
cycle-breakers (the registry lookups in ``serve/cache.py`` and
``runtime/spec.py``, the scoring re-exports), executed after every
module is initialised, so they can neither deadlock module init nor
create a load-order dependency.

Two extra clauses:

* When an upward edge also closes a *cycle* in the module-level import
  graph, the shortest cycle through the edge is reported alongside it —
  a cycle means there is no load order at all, which is strictly worse
  than a layering leak.
* ``lint`` is held to a harder contract than a band: it may import only
  the standard library and ``repro.lint`` itself.  The analyzer sits
  below everything it analyses; if it imported ``repro.io`` or
  ``repro.xp`` its own findings about them would be self-referential.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.graph import ProjectGraph, package_of
from repro.lint.rules.base import ProjectRule, ProjectViolation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["LayeringRule"]


class LayeringRule(ProjectRule):
    code = "REP008"
    name = "layering"
    summary = (
        "module-level imports must point to the same or a lower "
        "architecture band; lint imports only stdlib + itself"
    )

    def check_project(
        self, graph: ProjectGraph, config: "LintConfig"
    ) -> Iterator[ProjectViolation]:
        bands = config.layer_bands
        for module in sorted(graph.modules):
            analysis = graph.modules[module]
            source_unit = package_of(module)
            for site in analysis.imports:
                # Resolution through the graph gives the precise module
                # (and enables cycle reporting); an unresolved target —
                # the import points outside the linted file set — still
                # carries its layering unit in its dotted name.
                resolved = graph.resolve_module(site.target)
                target_module = resolved if resolved is not None else site.target
                if target_module == module:
                    continue
                target_unit = package_of(target_module)

                if source_unit == "lint":
                    # Only intra-project imports reach this rule, so
                    # anything outside the lint package is a violation
                    # regardless of its position (lazy included).
                    if target_unit != "lint":
                        yield (
                            analysis.relpath,
                            site.line,
                            site.col,
                            f"`{module}` (lint) imports `{target_module}`: "
                            "the lint package may import only the standard "
                            "library and repro.lint itself",
                        )
                    continue

                if not site.toplevel or target_unit == source_unit:
                    continue
                source_band = bands.get(source_unit)
                target_band = bands.get(target_unit)
                if source_band is None or target_band is None:
                    # A unit outside the declared map (new subsystem, test
                    # fixture): unknown, not wrong.  The map must be
                    # extended consciously, mirroring REP006's schema pin.
                    continue
                if target_band <= source_band:
                    continue
                message = (
                    f"`{module}` (band {source_band}, {source_unit}) imports "
                    f"`{target_module}` (band {target_band}, {target_unit}) "
                    "at module level: imports must point down the layer "
                    "stack; use a function-local import if this is a "
                    "sanctioned late binding"
                )
                if resolved is not None:
                    cycle = graph.shortest_cycle(module, resolved)
                    if cycle is not None:
                        chain = " -> ".join(cycle)
                        message += f"; this edge closes an import cycle: {chain}"
                yield (analysis.relpath, site.line, site.col, message)

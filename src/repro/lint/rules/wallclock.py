"""REP004 — wall-clock readings must never reach replay-compared payloads.

Kill-and-redrain equality is the runtime's core guarantee: a campaign
killed at any instant and re-drained must reproduce byte-identical
ledgers and checkpoints.  One ``time.time()`` inside a journal record or
checkpoint field breaks the equality on every replay — the classic bug
this repo shipped twice before the rule existed.

Two tiers:

* modules whose entire output is replay-compared (the checkpoint writer,
  the migration broker and policy — see
  :data:`repro.lint.config.WALLCLOCK_FREE_MODULES`) may not read the wall
  clock at all;
* elsewhere in the store-backed subsystems, wall-clock calls are flagged
  only when they appear lexically inside an argument of a payload writer
  (``append_journal``, ``write_event``, ``write_packet``,
  ``save_checkpoint``, ``write_json_atomic``, ``write_npz_atomic``, ...).

Timestamps belong in the *status documents* — the mutable, non-replayed
metadata channel that already carries pids and attempt counters.
Monotonic duration clocks (``time.perf_counter``, ``time.monotonic``)
are not wall clocks and are always fine.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.engine import ancestors, call_name
from repro.lint.rules.base import Rule, Violation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["WallClockRule"]

#: Calls that read the wall clock.
_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: Callees whose arguments become replay-compared payloads.
_PAYLOAD_WRITERS = frozenset(
    {
        "append_journal",
        "write_event",
        "write_packet",
        "save_checkpoint",
        "save_shard_result",
        "save_merged",
        "write_json_atomic",
        "write_bytes_atomic",
        "write_npz_atomic",
    }
)


def _inside_payload_writer(node: ast.AST) -> str:
    """Name of the enclosing payload-writer call, or ``""``."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.Call):
            leaf = call_name(ancestor).split(".")[-1]
            if leaf in _PAYLOAD_WRITERS:
                return leaf
    return ""


class WallClockRule(Rule):
    code = "REP004"
    name = "wall-clock-in-payload"
    summary = (
        "replay-compared payloads (journal, ledger, checkpoint) must not "
        "embed wall-clock readings; stamp the status channel instead"
    )

    def check(
        self, tree: ast.AST, relpath: str, config: "LintConfig"
    ) -> Iterator[Violation]:
        module_is_replay_critical = relpath in config.wallclock_free
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            if dotted not in _WALLCLOCK:
                continue
            if module_is_replay_critical:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"`{dotted}()` in a replay-critical module — everything "
                    f"{relpath} writes is compared byte-for-byte across "
                    "redrains; keep wall-clock out entirely",
                )
                continue
            writer = _inside_payload_writer(node)
            if writer:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"`{dotted}()` inside a `{writer}(...)` payload makes "
                    "replays non-identical; move the stamp to the shard "
                    "status document (the non-replayed metadata channel)",
                )

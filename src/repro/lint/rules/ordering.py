"""REP003 — deterministic iteration and serialisation ordering.

Two campaigns with the same spec must produce byte-identical artefacts.
Anything that iterates a ``set`` or a directory listing in hash/OS order
and feeds the result toward a file, a ledger or a journal payload makes
the bytes depend on memory layout and filesystem mood:

* iterating a set (literal, comprehension or ``set(...)`` call) or a
  ``.glob`` / ``.iterdir`` / ``os.listdir`` / ``os.scandir`` result in a
  ``for`` loop or comprehension without wrapping it in ``sorted(...)`` —
  unless the consumer is order-insensitive (``set``, ``len``, ``sum``,
  ``min``, ``max``, ``any``, ``all``, ``frozenset``);
* ``json.dumps`` without ``sort_keys=True`` — dict insertion order is
  deterministic per process, but two code paths building "the same"
  document in different key order serialise different bytes.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.lint.engine import ancestors, call_name
from repro.lint.rules.base import Rule, Violation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["UnorderedIterationRule"]

#: Attribute calls whose results arrive in OS/filesystem order.
_OS_ORDERED_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Module-level calls whose results arrive in OS order.
_OS_ORDERED_CALLS = frozenset({"os.listdir", "os.scandir"})

#: Wrapping calls that make iteration order irrelevant.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all"}
)


def _unordered_reason(expr: ast.expr) -> Optional[str]:
    """Why ``expr`` yields elements in non-deterministic order, or None."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set iterates in hash order"
    if isinstance(expr, ast.Call):
        dotted = call_name(expr)
        leaf = dotted.split(".")[-1] if dotted else ""
        if dotted == "set":
            return "a set iterates in hash order"
        if dotted in _OS_ORDERED_CALLS or leaf in _OS_ORDERED_METHODS:
            return f"`{leaf}` yields entries in filesystem order"
    return None


def _consumed_order_insensitively(node: ast.AST) -> bool:
    """Whether the iteration feeds a consumer that ignores element order."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.Call):
            if call_name(ancestor) in _ORDER_INSENSITIVE:
                return True
            return False
        if isinstance(ancestor, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            continue
        return False
    return False


class UnorderedIterationRule(Rule):
    code = "REP003"
    name = "unordered-iteration"
    summary = (
        "iteration feeding artefacts must be sorted(); json.dumps must "
        "pass sort_keys=True"
    )

    def check(
        self, tree: ast.AST, relpath: str, config: "LintConfig"
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters = [generator.iter for generator in node.generators]
            elif isinstance(node, ast.Call) and call_name(node) == "json.dumps":
                sort_keys = next(
                    (k.value for k in node.keywords if k.arg == "sort_keys"),
                    None,
                )
                if not (
                    isinstance(sort_keys, ast.Constant) and sort_keys.value is True
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "json.dumps without sort_keys=True serialises in "
                        "insertion order; replayed documents must be a pure "
                        "function of their payload",
                    )
                continue

            for iter_expr in iters:
                reason = _unordered_reason(iter_expr)
                if reason is None:
                    continue
                # A comprehension directly inside sorted()/set()/len()/...
                # consumes the elements order-insensitively.
                if not isinstance(node, (ast.For, ast.AsyncFor)) and (
                    _consumed_order_insensitively(node)
                ):
                    continue
                yield (
                    iter_expr.lineno,
                    iter_expr.col_offset,
                    f"{reason}; wrap the iterable in sorted(...) before it "
                    "feeds results, payloads or files",
                )

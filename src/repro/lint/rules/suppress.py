"""REP011: suppression comments must still suppress something.

``# repro-lint: disable=REPxxx`` is a standing exception, and standing
exceptions rot: the flagged line gets refactored away, the rule gets
rescoped, and the comment stays behind — an allowlist entry nobody can
explain that will silently swallow the *next* genuine finding on that
line.  This rule closes the loop: after every other rule has run and
suppressions have been applied, any disable comment (or individual code
within one) that matched **no** finding is itself reported at the
comment's line.  The net effect is that the suppression surface can only
shrink — adding one requires a real finding, and removing the finding
forces removing the comment.

Mechanically this rule is a pass inside the engine rather than an AST
visitor: it needs the applied-suppression bookkeeping (which comment
absorbed which finding), which only the engine has.  The class below
carries the rule's identity for ``--list-rules``, the policy table and
the docs; its ``check`` yields nothing.

``disable=REP011`` on the comment's own line suppresses the hygiene
finding like any other rule — and *that* suppression is exempt from
staleness, so the escape hatch does not recurse.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.rules.base import Rule, Violation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["SuppressionHygieneRule"]


class SuppressionHygieneRule(Rule):
    code = "REP011"
    name = "stale-suppression"
    summary = (
        "a `# repro-lint: disable=` comment whose codes no longer "
        "suppress any finding is itself a finding"
    )

    def check(
        self, tree: ast.AST, relpath: str, config: "LintConfig"
    ) -> Iterator[Violation]:
        """Implemented in the engine (needs suppression bookkeeping)."""
        return iter(())

"""Rule protocols shared by every rule family.

Two shapes of rule:

* :class:`Rule` — per-file.  A stateless object with a ``REPxxx`` code
  and a ``check`` method yielding ``(line, col, message)`` triples over
  one parent-annotated AST.
* :class:`ProjectRule` — whole-program.  Its ``check_project`` runs once
  per lint invocation over the assembled
  :class:`~repro.lint.graph.ProjectGraph` and yields violations tagged
  with the package-relative path they belong to.

Path scoping and suppression handling live in the engine in both cases;
rules only decide whether something violates their invariant.  (Project
rules see the whole graph — every module contributes facts — but each
*finding* is still filtered by the rule's path scope, so e.g. REP010
reports only inside ``serve/``/``runtime/`` even though its transitive
write-rank propagation may pass through helpers elsewhere.)
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Tuple

if TYPE_CHECKING:
    from repro.lint.config import LintConfig
    from repro.lint.graph import ProjectGraph

__all__ = ["ProjectRule", "ProjectViolation", "Rule", "Violation"]

#: One raw violation: (line, col, message).
Violation = Tuple[int, int, str]

#: One raw whole-program violation: (relpath, line, col, message).
ProjectViolation = Tuple[str, int, int, str]


class Rule:
    """Base class of every per-file lint rule."""

    #: Stable machine code, e.g. ``"REP001"``.
    code: str = ""
    #: Short kebab-case slug, e.g. ``"naked-rng"``.
    name: str = ""
    #: One-line statement of the invariant the rule enforces.
    summary: str = ""

    def check(
        self, tree: ast.AST, relpath: str, config: "LintConfig"
    ) -> Iterator[Violation]:
        """Yield every violation in ``tree`` (already parent-annotated)."""
        raise NotImplementedError


class ProjectRule:
    """Base class of every whole-program lint rule."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check_project(
        self, graph: "ProjectGraph", config: "LintConfig"
    ) -> Iterator[ProjectViolation]:
        """Yield every violation visible in the assembled project graph."""
        raise NotImplementedError

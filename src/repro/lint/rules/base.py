"""Rule protocol shared by every rule family.

A rule is a stateless object with a ``REPxxx`` code and a ``check``
method yielding ``(line, col, message)`` triples over a parent-annotated
AST.  Path scoping and suppression handling live in the engine; rules
only decide whether a node violates their invariant.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Tuple

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["Rule", "Violation"]

#: One raw violation: (line, col, message).
Violation = Tuple[int, int, str]


class Rule:
    """Base class of every lint rule."""

    #: Stable machine code, e.g. ``"REP001"``.
    code: str = ""
    #: Short kebab-case slug, e.g. ``"naked-rng"``.
    name: str = ""
    #: One-line statement of the invariant the rule enforces.
    summary: str = ""

    def check(
        self, tree: ast.AST, relpath: str, config: "LintConfig"
    ) -> Iterator[Violation]:
        """Yield every violation in ``tree`` (already parent-annotated)."""
        raise NotImplementedError

"""Rule registry for repro-lint.

One module per rule family; each contributes a :class:`~repro.lint.rules.base.Rule`
subclass.  :data:`RULES` is the canonical ordered registry — the engine
instantiates fresh rule objects per run via :func:`get_rules` so rules may
keep per-run state without leaking between invocations.
"""

from __future__ import annotations

from typing import List, Tuple, Type

from repro.lint.rules.base import Rule, Violation
from repro.lint.rules.dense import DenseOuterRule
from repro.lint.rules.io import NonAtomicWriteRule
from repro.lint.rules.ordering import UnorderedIterationRule
from repro.lint.rules.rng import NakedRngRule
from repro.lint.rules.schema import CheckpointSchemaRule
from repro.lint.rules.wallclock import WallClockRule
from repro.lint.rules.xpfacade import XpFacadeRule

__all__ = ["RULES", "Rule", "Violation", "get_rules"]

RULES: Tuple[Type[Rule], ...] = (
    NakedRngRule,
    NonAtomicWriteRule,
    UnorderedIterationRule,
    WallClockRule,
    DenseOuterRule,
    CheckpointSchemaRule,
    XpFacadeRule,
)


def get_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [rule_cls() for rule_cls in RULES]

"""Rule registry for repro-lint.

One module per rule family; each contributes a
:class:`~repro.lint.rules.base.Rule` (per-file) or
:class:`~repro.lint.rules.base.ProjectRule` (whole-program) subclass.
:data:`RULES` and :data:`PROJECT_RULES` are the canonical ordered
registries — the engine instantiates fresh rule objects per run via
:func:`get_rules` / :func:`get_project_rules` so rules may keep per-run
state without leaking between invocations.
"""

from __future__ import annotations

from typing import List, Tuple, Type

from repro.lint.rules.base import ProjectRule, ProjectViolation, Rule, Violation
from repro.lint.rules.dense import DenseOuterRule
from repro.lint.rules.io import NonAtomicWriteRule
from repro.lint.rules.layering import LayeringRule
from repro.lint.rules.ordering import UnorderedIterationRule
from repro.lint.rules.protocol import WriteProtocolRule
from repro.lint.rules.purity import KernelPurityRule
from repro.lint.rules.rng import NakedRngRule
from repro.lint.rules.schema import CheckpointSchemaRule
from repro.lint.rules.suppress import SuppressionHygieneRule
from repro.lint.rules.wallclock import WallClockRule
from repro.lint.rules.xpfacade import XpFacadeRule

__all__ = [
    "PROJECT_RULES",
    "ProjectRule",
    "ProjectViolation",
    "RULES",
    "Rule",
    "Violation",
    "get_project_rules",
    "get_rules",
]

RULES: Tuple[Type[Rule], ...] = (
    NakedRngRule,
    NonAtomicWriteRule,
    UnorderedIterationRule,
    WallClockRule,
    DenseOuterRule,
    CheckpointSchemaRule,
    XpFacadeRule,
    SuppressionHygieneRule,
)

PROJECT_RULES: Tuple[Type[ProjectRule], ...] = (
    LayeringRule,
    KernelPurityRule,
    WriteProtocolRule,
)


def get_rules() -> List[Rule]:
    """Fresh instances of every registered per-file rule, in code order."""
    return [rule_cls() for rule_cls in RULES]


def get_project_rules() -> List[ProjectRule]:
    """Fresh instances of every registered whole-program rule."""
    return [rule_cls() for rule_cls in PROJECT_RULES]

"""REP005 — no dense quadratic materialisation in kernel hot paths.

The paper-scale population is 15,360 members; a single ``(P, P)``
float64 intermediate is ~1.9 GB and evicts every cache line the streaming
kernels depend on.  PRs 1–2 rebuilt the scoring and dominance hot paths
to stream column blocks through the pairwise chunking helpers
(:mod:`repro.scoring.pairwise`), and this rule keeps them that way.

Flags, inside ``scoring/``, ``moscem/`` and ``simt/``:

* ``np.<ufunc>.outer(...)`` and ``np.outer(...)`` — eager (N, M)
  materialisation by construction;
* the broadcast outer pattern ``a[:, None] <op> b[None, :]`` — the same
  materialisation spelled as slicing.

Small bounded tables built once at init (per-residue radii sums, the
27-cell neighbourhood offsets) are legitimate; suppress those lines with
``# repro-lint: disable=REP005`` and a justification naming the bound.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.engine import call_name
from repro.lint.rules.base import Rule, Violation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["DenseOuterRule"]


def _is_full_slice(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Slice)
        and node.lower is None
        and node.upper is None
        and node.step is None
    )


def _is_none_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _axis_shape(expr: ast.expr) -> str:
    """``"col"`` for ``x[:, None]``, ``"row"`` for ``x[None, :]``, else ``""``."""
    if not isinstance(expr, ast.Subscript):
        return ""
    index = expr.slice
    if not (isinstance(index, ast.Tuple) and len(index.elts) == 2):
        return ""
    first, second = index.elts
    if _is_full_slice(first) and _is_none_constant(second):
        return "col"
    if _is_none_constant(first) and _is_full_slice(second):
        return "row"
    return ""


class DenseOuterRule(Rule):
    code = "REP005"
    name = "dense-outer"
    summary = (
        "hot paths must stream through the pairwise chunking helpers, "
        "not materialise dense (N, M) outer products"
    )

    def check(
        self, tree: ast.AST, relpath: str, config: "LintConfig"
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = call_name(node)
                parts = dotted.split(".")
                if parts[0] in ("np", "numpy") and parts[-1] == "outer":
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"`{dotted}(...)` materialises a dense (N, M) array; "
                        "stream column blocks via "
                        "repro.scoring.pairwise.population_blocks",
                    )
                continue
            if isinstance(node, ast.BinOp):
                shapes = {_axis_shape(node.left), _axis_shape(node.right)}
                if shapes == {"col", "row"}:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "broadcast outer `a[:, None] <op> b[None, :]` "
                        "materialises a dense (N, M) array; stream through "
                        "the pairwise chunk helpers (or suppress with a "
                        "justification naming the size bound)",
                    )

"""REP009: jit kernel closures must be transitively effect-free.

A function is a *jit root* when it is decorated ``@array_kernel`` (the
facade registry binds and may jit-compile it under any backend tier) or
when it is passed to ``maybe_jit``/``maybe_vmap`` directly.  Everything
reachable from a root through resolved intra-project calls must perform
no effect, because under a tracing jit the Python body runs **once** —
at trace time — and anything it did then is frozen into (or absent
from) the compiled artefact:

* **IO** — a ``print`` fires once per compilation, a file write happens
  at trace time with tracer values;
* **RNG construction / entropy draws** — the draw happens once and the
  same "random" constant is replayed forever (kernels must consume
  pre-drawn variate arrays);
* **wall-clock** — the timestamp is a trace-time constant;
* **global/nonlocal writes** — invisible to the tracer, silently absent
  from the compiled function;
* **attribute/item writes on parameters** — in-place mutation of traced
  arrays is either an error or a silent functional no-op, depending on
  the backend.

Where REP007 spots the syntactic tell (``np.`` inside a kernel body),
this rule walks the call graph: a helper three calls down that opens a
file poisons the root.  Unresolvable calls are opaque and assumed pure
— the rule under-approximates, so every finding is real.

Findings are reported at the jit root's ``def`` line (that is where the
contract lives) with the call chain and the impure site spelled out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Set, Tuple

from repro.lint.graph import ProjectGraph
from repro.lint.rules.base import ProjectRule, ProjectViolation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["KernelPurityRule"]

_KIND_LABEL = {
    "io": "performs IO",
    "rng": "constructs/draws RNG entropy",
    "clock": "reads the wall clock",
    "scope": "writes enclosing scope",
    "mutation": "mutates a parameter",
}


class KernelPurityRule(ProjectRule):
    code = "REP009"
    name = "kernel-purity"
    summary = (
        "the transitive call closure of @array_kernel bodies and "
        "maybe_jit-wrapped functions must be effect-free"
    )

    def check_project(
        self, graph: ProjectGraph, config: "LintConfig"
    ) -> Iterator[ProjectViolation]:
        for root in self._roots(graph):
            analysis, info = graph.functions[root]
            chains = graph.call_closure(root)
            reported: Set[Tuple[str, int, int]] = set()
            for reached in sorted(chains):
                _, reached_info = graph.functions[reached]
                for fact in reached_info.impure:
                    key = (reached, fact.line, fact.col)
                    if key in reported:
                        continue
                    reported.add(key)
                    label = _KIND_LABEL.get(fact.kind, fact.kind)
                    site = f"{reached} {label} (`{fact.what}`, line {fact.line})"
                    chain = chains[reached]
                    if len(chain) > 1:
                        via = " -> ".join(
                            name.rsplit(".", 1)[-1] for name in chain
                        )
                        site += f" via {via}"
                    yield (
                        analysis.relpath,
                        info.line,
                        info.col,
                        f"jit root `{root.rsplit('.', 1)[-1]}` is not "
                        f"effect-free: {site}",
                    )

    @staticmethod
    def _roots(graph: ProjectGraph) -> List[str]:
        roots: Set[str] = set()
        for name, (_, info) in graph.functions.items():
            if info.kernel:
                roots.add(name)
        for analysis in graph.modules.values():
            for site in analysis.jit_roots:
                if site.target in graph.functions:
                    roots.add(site.target)
        return sorted(roots)

"""REP001 — naked RNG outside the sanctioned seed-derivation sites.

Every stochastic draw in this repo flows from a named
:class:`numpy.random.Generator` stream derived from a master seed through
coordinate hashing (:mod:`repro.utils.rng`, ``campaign_cell_seed``,
``migration_seed``).  A single ``np.random.shuffle`` or bare
``default_rng()`` breaks bit-identical checkpoint resume, paired
backend comparisons and kill-and-redrain ledger replay — silently, and
only on the runs that happen to cross it.

Flags, anywhere outside the allowlisted derivation modules:

* stdlib ``random.*`` calls — process-global stream, seedless by default;
* legacy ``np.random.*`` global-state calls (``np.random.normal``,
  ``np.random.seed``, ...);
* ``default_rng()`` with **no** arguments — fresh OS entropy (a seeded
  ``default_rng(seed)`` is fine anywhere: the seed had to come from a
  sanctioned derivation to exist);
* ``SeedSequence(...)`` — seed derivation must stay centralised so every
  stream's provenance is auditable in one place.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.engine import call_name
from repro.lint.rules.base import Rule, Violation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["NakedRngRule"]

#: Stdlib ``random`` functions that touch the process-global stream.
_STDLIB_RANDOM = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Legacy ``np.random`` module-level functions (global RandomState).
_NP_LEGACY = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "dirichlet",
        "exponential",
        "gamma",
        "get_state",
        "laplace",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_integers",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "set_state",
        "shuffle",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "uniform",
    }
)


class NakedRngRule(Rule):
    code = "REP001"
    name = "naked-rng"
    summary = (
        "stochastic draws must come from coordinate-derived Generator "
        "streams, never from global or OS-entropy RNGs"
    )

    def check(
        self, tree: ast.AST, relpath: str, config: "LintConfig"
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            if not dotted:
                continue
            parts = dotted.split(".")
            leaf = parts[-1]

            if len(parts) == 2 and parts[0] == "random" and leaf in _STDLIB_RANDOM:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"stdlib `{dotted}()` draws from the process-global RNG; "
                    "take a seeded np.random.Generator from the caller "
                    "(see repro.utils.rng)",
                )
                continue

            is_np_random = len(parts) >= 3 and parts[0] in (
                "np",
                "numpy",
            ) and parts[1] == "random"
            if is_np_random and leaf in _NP_LEGACY:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"legacy `{dotted}()` uses numpy's global RandomState; "
                    "draw from a coordinate-derived Generator instead",
                )
                continue

            if leaf == "default_rng" and (is_np_random or dotted == "default_rng"):
                if not node.args and not node.keywords:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "bare `default_rng()` seeds from OS entropy and is "
                        "unreplayable; pass a seed derived via "
                        "repro.utils.rng.spawn_rng or campaign_cell_seed",
                    )
                continue

            if leaf == "SeedSequence" and (
                is_np_random or dotted == "SeedSequence"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "SeedSequence derivation belongs in the sanctioned sites "
                    "(repro.utils.rng, runtime/spec.py, islands/policy.py) "
                    "so stream provenance stays auditable in one place",
                )

"""REP002 — durable writes must go through the atomic helpers.

The run store is a multi-process coordination substrate: workers, the
daemon and status pollers all read files other processes are writing.
The only crash-safe write is tmp-file + ``os.replace`` — exactly what
:mod:`repro.io` provides — so inside the store-backed subsystems
(``runtime/``, ``islands/``, ``api/``) any direct ``open(..., "w")``,
``Path.write_text`` / ``write_bytes`` or ``np.save*``-to-path call is a
torn-read bug waiting for an ill-timed kill.

Append mode (``"a"``) is deliberately exempt: the journal's single-write
line appends are the sanctioned append-only pattern.  In-memory
serialisation (``np.savez_compressed(buffer, ...)``) is exempt because no
file is touched; the heuristic treats a first argument named ``buf*`` or
a direct ``BytesIO()`` call as in-memory.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.engine import call_name
from repro.lint.rules.base import Rule, Violation

if TYPE_CHECKING:
    from repro.lint.config import LintConfig

__all__ = ["NonAtomicWriteRule"]

_NP_SAVERS = frozenset(
    {"np.save", "np.savez", "np.savez_compressed", "numpy.save", "numpy.savez",
     "numpy.savez_compressed"}
)

_HELP = "route the write through repro.io (atomic tmp-file + os.replace)"


def _mode_argument(node: ast.Call) -> Optional[ast.expr]:
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def _is_memory_buffer(arg: ast.expr) -> bool:
    if isinstance(arg, ast.Name) and arg.id.lower().startswith("buf"):
        return True
    if isinstance(arg, ast.Call):
        return call_name(arg).split(".")[-1] == "BytesIO"
    return False


class NonAtomicWriteRule(Rule):
    code = "REP002"
    name = "non-atomic-write"
    summary = (
        "store-backed subsystems must write durable files atomically "
        "via repro.io, never with open('w')/write_text/np.save"
    )

    def check(
        self, tree: ast.AST, relpath: str, config: "LintConfig"
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            leaf = dotted.split(".")[-1] if dotted else ""

            if dotted == "open":
                mode = _mode_argument(node)
                if (
                    isinstance(mode, ast.Constant)
                    and isinstance(mode.value, str)
                    and any(flag in mode.value for flag in ("w", "x", "+"))
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"`open(..., {mode.value!r})` writes in place — a "
                        f"mid-write kill leaves a torn file; {_HELP}",
                    )
                continue

            if leaf in ("write_text", "write_bytes") and "." in dotted:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"`.{leaf}()` replaces the file non-atomically; {_HELP}",
                )
                continue

            if dotted in _NP_SAVERS:
                if node.args and _is_memory_buffer(node.args[0]):
                    continue
                yield (
                    node.lineno,
                    node.col_offset,
                    f"`{dotted}` straight to a path is non-atomic; serialise "
                    f"via repro.io.write_npz_atomic (or into a BytesIO)",
                )
                continue

            if dotted in ("json.dump", "pickle.dump"):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"`{dotted}` streams into an open handle non-atomically; "
                    f"{_HELP}",
                )

"""Whole-program analysis: import graph, call graph, per-function facts.

PR 6's rule engine is deliberately per-file — one parse, one rule pass,
no global state.  The whole-program rules (REP008 layering, REP009
kernel purity, REP010 write protocol) need to see *across* files: a
helper three calls below an ``@array_kernel`` that opens a file, an
import edge that points up the architecture, a marker file written
before its payload in another method.  This module is the bridge: each
file's already-parsed AST is distilled — still one parse per file — into
a small, JSON-serialisable :class:`ModuleAnalysis` (import sites,
per-function call edges, impurity facts, durable-write sites), and a
:class:`ProjectGraph` assembles every module's analysis into the
project-wide import graph and a conservative call graph.

Conservatism, stated once:

* **Calls** are resolved through each module's qualified-name table
  (imports + local definitions, including ``self.`` methods and nested
  functions).  A call that cannot be resolved to an intra-project
  function — a method on an arbitrary object, a callable argument, an
  ``xp`` namespace operation — is *opaque*: assumed pure, assumed
  write-free.  The rules therefore under-approximate reachability and
  never flag what they cannot see; the facts they do flag are real.
* **Impurity facts** are recorded for *every* function (the denylists
  below are cheap), but only reported when a jit root's transitive call
  closure actually reaches them.
* The analyses carry no AST nodes, only plain data — which is what makes
  the on-disk cache (:mod:`repro.lint.cache`) a per-file JSON document
  keyed by content hash.

This module imports nothing outside the standard library: the lint
package is the bottom of the layer order it enforces (REP008 holds it to
stdlib + its own engine).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ANALYSIS_VERSION",
    "CallSite",
    "FunctionInfo",
    "ImportSite",
    "ImpureFact",
    "ModuleAnalysis",
    "ProjectGraph",
    "WriteSite",
    "analyze_module",
    "dotted_name",
    "module_name_of",
    "package_of",
]

#: Version of the analysis schema below.  Bumping it invalidates every
#: cached analysis document at once (the cache key embeds it), so adding
#: a fact field never resurrects stale summaries.
ANALYSIS_VERSION: int = 1


# ---------------------------------------------------------------------------
# Impurity denylists (REP009 facts)
# ---------------------------------------------------------------------------

#: Bare calls that touch the host environment.
_IO_CALLS = frozenset({"open", "input", "print", "breakpoint", "exec", "eval"})

#: Dotted-name prefixes whose whole namespace is host interaction.
#: (``os.path`` is pure string manipulation and explicitly exempt.)
_IO_PREFIXES = (
    "os.",
    "shutil.",
    "subprocess.",
    "socket.",
    "tempfile.",
    "repro.io.",
)
_IO_PREFIX_EXEMPT = ("os.path.",)

#: Method leaves that read or mutate the filesystem wherever they appear
#: (``Path`` methods, file handles).  Kept to unambiguous names so opaque
#: in-memory objects are not miscast as IO.
_IO_METHOD_LEAVES = frozenset(
    {
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "unlink",
        "mkdir",
        "rmdir",
        "touch",
        "rename",
        "hardlink_to",
        "symlink_to",
    }
)

#: numpy entry points that serialise to / deserialise from disk.
_NP_IO_LEAVES = frozenset(
    {
        "load",
        "save",
        "savez",
        "savez_compressed",
        "loadtxt",
        "savetxt",
        "genfromtxt",
        "fromfile",
        "tofile",
        "memmap",
    }
)

#: RNG construction and entropy draws; a jit kernel may only consume
#: arrays of pre-drawn variates handed in by its caller.
_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")
_RNG_LEAVES = frozenset({"default_rng", "SeedSequence", "RandomState"})
_RNG_CALLS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: Clock reads.  Monotonic counters are included deliberately: *any*
#: clock read inside a jit-compiled kernel happens at trace time, once,
#: and is then baked into the compiled artefact — a correctness bug, not
#: just a determinism one.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)

#: The atomic write helpers of :mod:`repro.io` (REP010 protocol events).
_WRITE_HELPERS = frozenset(
    {
        "atomic_write",
        "write_json_atomic",
        "write_bytes_atomic",
        "write_npz_atomic",
        "create_json_exclusive",
    }
)


def dotted_name(node: ast.AST) -> str:
    """Dotted name of an expression (``""`` when it is not a plain path)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def module_name_of(relpath: str) -> str:
    """Dotted module name of a package-relative path.

    ``repro/scoring/pairwise.py`` → ``repro.scoring.pairwise``;
    ``repro/xp/__init__.py`` → ``repro.xp``.  Non-package paths (test
    fixtures) are converted the same way so single-file linting works.
    """
    name = relpath[:-3] if relpath.endswith(".py") else relpath
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def package_of(module: str) -> str:
    """Top-level layering unit of a module: its first sub-package.

    ``repro.scoring.pairwise`` → ``scoring``; the single-module layers
    directly under the package root (``repro.io``, ``repro.config``) are
    their own unit; the root package itself is ``repro``.
    """
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) == 1:
        return parts[0]
    return parts[1]


# ---------------------------------------------------------------------------
# Per-module analysis records
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ImportSite:
    """One intra-project import: the candidate target and where it happens."""

    target: str  #: dotted candidate (may name a module or an attribute of one)
    line: int
    col: int
    toplevel: bool  #: imported at module scope (not inside a function)


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One resolved intra-project call edge candidate."""

    target: str  #: fully qualified candidate, e.g. ``repro.geometry.rotation.apply``
    line: int


@dataclasses.dataclass(frozen=True)
class ImpureFact:
    """One direct effect a function performs (REP009 evidence)."""

    kind: str  #: ``io`` | ``rng`` | ``clock`` | ``scope`` | ``mutation``
    what: str  #: human-readable operation, e.g. ``open`` or ``global totals``
    line: int
    col: int


@dataclasses.dataclass(frozen=True)
class WriteSite:
    """One durable-write helper call (REP010 protocol event)."""

    helper: str  #: the :mod:`repro.io` helper name
    filename: str  #: resolved target leaf name (``entry.json``) or ``""``
    line: int
    col: int


@dataclasses.dataclass(frozen=True)
class FunctionInfo:
    """Everything the whole-program rules need to know about one function."""

    qualname: str  #: module-relative, e.g. ``Cls.method`` or ``f.<locals>.g``
    line: int
    col: int
    kernel: bool  #: decorated with ``@array_kernel``
    calls: Tuple[CallSite, ...]
    impure: Tuple[ImpureFact, ...]
    writes: Tuple[WriteSite, ...]


@dataclasses.dataclass(frozen=True)
class ModuleAnalysis:
    """The distilled, serialisable analysis of one module."""

    relpath: str
    module: str
    imports: Tuple[ImportSite, ...]
    functions: Tuple[FunctionInfo, ...]
    #: resolved candidates wrapped by ``maybe_jit`` / ``maybe_vmap`` calls
    jit_roots: Tuple[CallSite, ...]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the cache document body)."""
        return {
            "relpath": self.relpath,
            "module": self.module,
            "imports": [dataclasses.astuple(s) for s in self.imports],
            "functions": [
                {
                    "qualname": f.qualname,
                    "line": f.line,
                    "col": f.col,
                    "kernel": f.kernel,
                    "calls": [dataclasses.astuple(c) for c in f.calls],
                    "impure": [dataclasses.astuple(i) for i in f.impure],
                    "writes": [dataclasses.astuple(w) for w in f.writes],
                }
                for f in self.functions
            ],
            "jit_roots": [dataclasses.astuple(c) for c in self.jit_roots],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModuleAnalysis":
        """Inverse of :meth:`to_dict` (raises on malformed documents)."""
        return cls(
            relpath=str(payload["relpath"]),
            module=str(payload["module"]),
            imports=tuple(ImportSite(*row) for row in payload["imports"]),
            functions=tuple(
                FunctionInfo(
                    qualname=str(f["qualname"]),
                    line=int(f["line"]),
                    col=int(f["col"]),
                    kernel=bool(f["kernel"]),
                    calls=tuple(CallSite(*row) for row in f["calls"]),
                    impure=tuple(ImpureFact(*row) for row in f["impure"]),
                    writes=tuple(WriteSite(*row) for row in f["writes"]),
                )
                for f in payload["functions"]
            ),
            jit_roots=tuple(CallSite(*row) for row in payload["jit_roots"]),
        )


# ---------------------------------------------------------------------------
# Module analysis
# ---------------------------------------------------------------------------


def _is_type_checking_guard(node: ast.stmt) -> bool:
    """Whether a statement is an ``if TYPE_CHECKING:`` block."""
    return isinstance(node, ast.If) and dotted_name(node.test).endswith(
        "TYPE_CHECKING"
    )


def _is_array_kernel_decorator(decorator: ast.expr) -> bool:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    dotted = dotted_name(target)
    return dotted.split(".")[-1] == "array_kernel"


class _Scope:
    """Name-resolution context of one function body."""

    def __init__(
        self,
        qualname: str,
        class_name: Optional[str],
        local_defs: Dict[str, str],
    ) -> None:
        self.qualname = qualname
        self.class_name = class_name
        #: local function/class name → module-relative qualname
        self.local_defs = local_defs


class _ModuleCollector:
    """Single-pass extraction of a module's analysis facts."""

    def __init__(self, relpath: str) -> None:
        self.relpath = relpath
        self.module = module_name_of(relpath)
        self.imports: List[ImportSite] = []
        self.functions: List[FunctionInfo] = []
        self.jit_roots: List[CallSite] = []
        #: import alias → fully qualified dotted target
        self.aliases: Dict[str, str] = {}
        #: module-level ``NAME = "literal"`` constants
        self.module_consts: Dict[str, str] = {}
        #: class-level ``(Cls, NAME) = "literal"`` constants
        self.class_consts: Dict[Tuple[str, str], str] = {}
        #: module-level function/class name → module-relative qualname
        self.module_defs: Dict[str, str] = {}

    # -- pass 1: imports, constants, definition tables ------------------

    def collect(self, tree: ast.Module) -> ModuleAnalysis:
        self._collect_imports(tree.body, toplevel=True)
        self._collect_tables(tree.body, prefix="", class_name=None)
        self._collect_functions(tree.body, prefix="", class_name=None)
        self._collect_module_jit_roots(tree)
        seen: Set[Tuple[str, int]] = set()
        roots: List[CallSite] = []
        for site in self.jit_roots:
            key = (site.target, site.line)
            if key not in seen:
                seen.add(key)
                roots.append(site)
        return ModuleAnalysis(
            relpath=self.relpath,
            module=self.module,
            imports=tuple(self.imports),
            functions=tuple(self.functions),
            jit_roots=tuple(roots),
        )

    def _collect_module_jit_roots(self, tree: ast.Module) -> None:
        """``maybe_jit(f)`` at module scope (in-function sites are caught
        during function analysis; duplicates are removed in collect)."""
        scope = _Scope("<module>", None, {})
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            leaf = dotted_name(node.func).split(".")[-1]
            if leaf in ("maybe_jit", "maybe_vmap") and node.args:
                wrapped = self._resolve_callable(
                    dotted_name(node.args[0]), scope
                )
                if wrapped:
                    self.jit_roots.append(CallSite(wrapped, node.lineno))

    def _collect_imports(self, body: Sequence[ast.stmt], toplevel: bool) -> None:
        for stmt in body:
            if _is_type_checking_guard(stmt):
                # Type-only imports never execute; record aliases for
                # call resolution but contribute no graph edge.
                self._record_aliases(stmt)
                continue
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._record_import(stmt, toplevel)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_imports(stmt.body, toplevel=False)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                for child_body in _statement_bodies(stmt):
                    self._collect_imports(child_body, toplevel=toplevel)
            elif isinstance(stmt, ast.ClassDef):
                self._collect_imports(stmt.body, toplevel=toplevel)

    def _record_aliases(self, stmt: ast.stmt) -> None:
        for inner in ast.walk(stmt):
            if isinstance(inner, (ast.Import, ast.ImportFrom)):
                self._record_import(inner, toplevel=False, edge=False)

    def _record_import(
        self,
        stmt: ast.stmt,
        toplevel: bool,
        edge: bool = True,
    ) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                self.aliases[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    self.aliases[local] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; record the full path
                    # for the import edge, the root for resolution.
                    self.aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
                if edge and self._intra(alias.name):
                    self.imports.append(
                        ImportSite(alias.name, stmt.lineno, stmt.col_offset, toplevel)
                    )
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level != 0 or not stmt.module:
                return
            for alias in stmt.names:
                target = f"{stmt.module}.{alias.name}"
                self.aliases[alias.asname or alias.name] = target
                if edge and self._intra(stmt.module):
                    self.imports.append(
                        ImportSite(target, stmt.lineno, stmt.col_offset, toplevel)
                    )

    @staticmethod
    def _intra(module: str) -> bool:
        return module == "repro" or module.startswith("repro.")

    def _collect_tables(
        self, body: Sequence[ast.stmt], prefix: str, class_name: Optional[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Constant
            ):
                value = stmt.value.value
                if not isinstance(value, str):
                    continue
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if class_name is None and not prefix:
                        self.module_consts[target.id] = value
                    elif class_name is not None:
                        self.class_consts[(class_name, target.id)] = value
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                if not prefix and class_name is None:
                    self.module_defs[stmt.name] = qual
            elif isinstance(stmt, ast.ClassDef):
                if not prefix and class_name is None:
                    self.module_defs[stmt.name] = stmt.name
                self._collect_tables(
                    stmt.body, prefix=f"{stmt.name}.", class_name=stmt.name
                )

    # -- pass 2: per-function facts --------------------------------------

    def _collect_functions(
        self, body: Sequence[ast.stmt], prefix: str, class_name: Optional[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                self._analyze_function(stmt, qual, class_name)
                self._collect_functions(
                    stmt.body, prefix=f"{qual}.<locals>.", class_name=None
                )
            elif isinstance(stmt, ast.ClassDef):
                self._collect_functions(
                    stmt.body, prefix=f"{prefix}{stmt.name}.", class_name=stmt.name
                )
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                for child_body in _statement_bodies(stmt):
                    self._collect_functions(child_body, prefix, class_name)

    def _analyze_function(
        self,
        fn: ast.AST,
        qualname: str,
        class_name: Optional[str],
    ) -> None:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = _parameter_names(fn.args)
        rebound = _rebound_names(fn)
        nested = {
            child.name: f"{qualname}.<locals>.{child.name}"
            for child in fn.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        scope = _Scope(qualname, class_name, nested)
        local_assigns = _single_assignments(fn)

        calls: List[CallSite] = []
        impure: List[ImpureFact] = []
        writes: List[WriteSite] = []

        for node in _walk_own_body(fn):
            if isinstance(node, ast.Global):
                impure.append(
                    ImpureFact(
                        "scope",
                        f"global {', '.join(node.names)}",
                        node.lineno,
                        node.col_offset,
                    )
                )
            elif isinstance(node, ast.Nonlocal):
                impure.append(
                    ImpureFact(
                        "scope",
                        f"nonlocal {', '.join(node.names)}",
                        node.lineno,
                        node.col_offset,
                    )
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                impure.extend(_parameter_mutations(node, params, rebound))
            elif isinstance(node, ast.Call):
                self._analyze_call(
                    node, scope, local_assigns, calls, impure, writes
                )

        self.functions.append(
            FunctionInfo(
                qualname=qualname,
                line=fn.lineno,
                col=fn.col_offset,
                kernel=any(
                    _is_array_kernel_decorator(d) for d in fn.decorator_list
                ),
                calls=tuple(calls),
                impure=tuple(impure),
                writes=tuple(writes),
            )
        )

    def _analyze_call(
        self,
        node: ast.Call,
        scope: _Scope,
        local_assigns: Dict[str, Optional[ast.expr]],
        calls: List[CallSite],
        impure: List[ImpureFact],
        writes: List[WriteSite],
    ) -> None:
        raw = dotted_name(node.func)
        if not raw:
            return
        qualified = self._qualify(raw)
        leaf = raw.split(".")[-1]

        fact = _impurity_of(raw, qualified, leaf)
        if fact is not None:
            impure.append(
                ImpureFact(fact, qualified or raw, node.lineno, node.col_offset)
            )

        if leaf in _WRITE_HELPERS:
            filename = ""
            if node.args:
                filename = self._filename_of(
                    node.args[0], scope, local_assigns
                )
            writes.append(
                WriteSite(leaf, filename, node.lineno, node.col_offset)
            )

        if leaf in ("maybe_jit", "maybe_vmap") and node.args:
            wrapped = self._resolve_callable(
                dotted_name(node.args[0]), scope
            )
            if wrapped:
                self.jit_roots.append(CallSite(wrapped, node.lineno))

        resolved = self._resolve_callable(raw, scope)
        if resolved:
            calls.append(CallSite(resolved, node.lineno))

    def _qualify(self, raw: str) -> str:
        """Expand the alias root of a dotted name (``np.x`` → ``numpy.x``)."""
        root, _, rest = raw.partition(".")
        target = self.aliases.get(root)
        if target is None:
            return raw
        return f"{target}.{rest}" if rest else target

    def _resolve_callable(self, raw: str, scope: _Scope) -> str:
        """Fully qualified intra-project candidate of a called name, or ``""``."""
        if not raw:
            return ""
        root, _, rest = raw.partition(".")
        if root == "self" and scope.class_name and rest and "." not in rest:
            return f"{self.module}.{scope.class_name}.{rest}"
        if not rest:
            if raw in scope.local_defs:
                return f"{self.module}.{scope.local_defs[raw]}"
            if raw in self.module_defs:
                return f"{self.module}.{self.module_defs[raw]}"
        qualified = self._qualify(raw)
        if self._intra(qualified):
            return qualified
        if root in self.module_defs and rest:
            # ``Cls.method`` / ``helper.attr`` on a module-level definition.
            return f"{self.module}.{self.module_defs[root]}.{rest}"
        return ""

    def _filename_of(
        self,
        expr: ast.expr,
        scope: _Scope,
        local_assigns: Dict[str, Optional[ast.expr]],
        depth: int = 0,
    ) -> str:
        """Leaf filename of a path expression, or ``""`` when opaque."""
        if depth > 8:
            return ""
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
            return self._filename_of(expr.right, scope, local_assigns, depth + 1)
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value.rsplit("/", 1)[-1]
        if isinstance(expr, ast.Attribute):
            dotted = dotted_name(expr)
            root, _, attr = dotted.partition(".")
            if root == "self" and scope.class_name:
                value = self.class_consts.get((scope.class_name, attr))
                if value is not None:
                    return value
            if (root, attr) in self.class_consts:
                return self.class_consts[(root, attr)]
            return ""
        if isinstance(expr, ast.Name):
            if expr.id in self.module_consts:
                return self.module_consts[expr.id]
            assigned = local_assigns.get(expr.id)
            if assigned is not None:
                return self._filename_of(assigned, scope, local_assigns, depth + 1)
            return ""
        if isinstance(expr, ast.Call) and dotted_name(expr.func).split(".")[-1] in (
            "Path",
            "joinpath",
        ):
            if expr.args:
                return self._filename_of(
                    expr.args[-1], scope, local_assigns, depth + 1
                )
        return ""


def _statement_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    bodies: List[List[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field, None)
        if value:
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []):
        bodies.append(handler.body)
    return bodies


def _parameter_names(args: ast.arguments) -> Set[str]:
    names = {a.arg for a in args.args + args.posonlyargs + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _walk_own_body(fn: ast.AST) -> List[ast.AST]:
    """Every node of a function excluding nested function/class bodies."""
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    nodes: List[ast.AST] = []
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        nodes.append(node)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def _bound_name_leaves(target: ast.expr) -> Iterator[str]:
    """Plain names a binding target rebinds (``a``, ``a, b``, ``[a, *b]``).

    Attribute and subscript stores are *not* rebindings — they mutate the
    object behind the existing binding, which is exactly what the
    mutation fact must keep seeing.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_name_leaves(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_name_leaves(target.value)


def _rebound_names(fn: ast.AST) -> Set[str]:
    """Names rebound anywhere in a function body (excluding nested defs)."""
    rebound: Set[str] = set()
    for node in _walk_own_body(fn):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            targets = [node.optional_vars]
        elif isinstance(node, ast.NamedExpr):
            targets = [node.target]
        for target in targets:
            rebound.update(_bound_name_leaves(target))
    return rebound


def _single_assignments(fn: ast.AST) -> Dict[str, Optional[ast.expr]]:
    """Names assigned exactly once in a function → their value expression."""
    assigns: Dict[str, Optional[ast.expr]] = {}
    for node in _walk_own_body(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                key = target.id
                assigns[key] = None if key in assigns else node.value
    return {k: v for k, v in assigns.items()}


def _parameter_mutations(
    node: ast.stmt, params: Set[str], rebound: Set[str]
) -> List[ImpureFact]:
    """Attribute/subscript writes whose target roots at a parameter."""
    facts: List[ImpureFact] = []
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            continue
        base: ast.expr = target
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if not isinstance(base, ast.Name):
            continue
        # A parameter rebound to a local copy (``coords = xp.asarray(coords)``)
        # is the function's own value; only writes through the caller's
        # binding are mutations.
        if base.id in params and base.id not in rebound and base.id != "self":
            kind = "attribute" if isinstance(target, ast.Attribute) else "item"
            facts.append(
                ImpureFact(
                    "mutation",
                    f"{kind} write on parameter `{base.id}`",
                    target.lineno,
                    target.col_offset,
                )
            )
    return facts


def _impurity_of(raw: str, qualified: str, leaf: str) -> Optional[str]:
    """Impurity kind of one call by dotted name, or ``None``."""
    name = qualified or raw
    if name in _CLOCK_CALLS:
        return "clock"
    if (
        name in _RNG_CALLS
        or leaf in _RNG_LEAVES
        or any(name.startswith(p) for p in _RNG_PREFIXES)
    ):
        return "rng"
    if name in _IO_CALLS or leaf in _IO_METHOD_LEAVES or leaf in _WRITE_HELPERS:
        return "io"
    if any(name.startswith(p) for p in _IO_PREFIXES) and not any(
        name.startswith(p) for p in _IO_PREFIX_EXEMPT
    ):
        return "io"
    if name.startswith("numpy.") and leaf in _NP_IO_LEAVES:
        return "io"
    return None


def analyze_module(tree: ast.Module, relpath: str) -> ModuleAnalysis:
    """Distil one parsed module into its whole-program analysis facts."""
    return _ModuleCollector(relpath).collect(tree)


# ---------------------------------------------------------------------------
# The project graph
# ---------------------------------------------------------------------------


class ProjectGraph:
    """Every linted module's analysis, assembled into one queryable graph."""

    def __init__(self, analyses: Sequence[ModuleAnalysis]) -> None:
        self.modules: Dict[str, ModuleAnalysis] = {}
        for analysis in analyses:
            self.modules[analysis.module] = analysis
        #: fully qualified function name → (owning analysis, info)
        self.functions: Dict[str, Tuple[ModuleAnalysis, FunctionInfo]] = {}
        for analysis in self.modules.values():
            for info in analysis.functions:
                self.functions[f"{analysis.module}.{info.qualname}"] = (
                    analysis,
                    info,
                )
        self._toplevel: Optional[Dict[str, Set[str]]] = None

    # -- resolution ------------------------------------------------------

    def resolve_module(self, target: str) -> Optional[str]:
        """Module of an import candidate (peeling one attribute if needed)."""
        if target in self.modules:
            return target
        parent = target.rsplit(".", 1)[0] if "." in target else target
        if parent in self.modules:
            return parent
        return None

    def resolve_function(self, candidate: str) -> Optional[str]:
        """The candidate itself when it names a known function."""
        return candidate if candidate in self.functions else None

    # -- the module-level import graph -----------------------------------

    def toplevel_imports(self) -> Dict[str, Set[str]]:
        """Module → intra-project modules it imports at module scope."""
        if self._toplevel is None:
            graph: Dict[str, Set[str]] = {}
            for name, analysis in self.modules.items():
                targets: Set[str] = set()
                for site in analysis.imports:
                    if not site.toplevel:
                        continue
                    resolved = self.resolve_module(site.target)
                    if resolved is not None and resolved != name:
                        targets.add(resolved)
                graph[name] = targets
            self._toplevel = graph
        return self._toplevel

    def shortest_cycle(self, source: str, target: str) -> Optional[List[str]]:
        """Shortest module chain ``source → target → ... → source``.

        ``None`` when the edge ``source → target`` closes no cycle.  BFS
        over the module-level import graph from ``target`` back to
        ``source``; deterministic because neighbours expand in sorted
        order.
        """
        graph = self.toplevel_imports()
        if target not in graph:
            return None
        parents: Dict[str, str] = {target: source}
        queue = [target]
        while queue:
            current = queue.pop(0)
            if current == source:
                chain = [source]
                node = source
                while True:
                    node = parents[node]
                    chain.append(node)
                    if node == source:
                        break
                chain.reverse()
                return chain
            for neighbour in sorted(graph.get(current, ())):
                if neighbour not in parents:
                    parents[neighbour] = current
                    queue.append(neighbour)
        return None

    # -- call-graph closures ---------------------------------------------

    def call_closure(self, root: str) -> Dict[str, Tuple[str, ...]]:
        """Reachable project functions from ``root`` → their call chain.

        The chain is the function sequence from ``root`` (inclusive) to
        the reached function (inclusive); unresolvable calls are opaque
        and terminate exploration along that edge.
        """
        if root not in self.functions:
            return {}
        chains: Dict[str, Tuple[str, ...]] = {root: (root,)}
        queue = [root]
        while queue:
            current = queue.pop(0)
            _, info = self.functions[current]
            for call in info.calls:
                target = self.resolve_function(call.target)
                if target is None or target in chains:
                    continue
                chains[target] = chains[current] + (target,)
                queue.append(target)
        return chains

"""The rule engine: AST walking, suppression handling, finding reports.

One parse per file: the engine builds the AST, annotates every node with
its parent (so rules can reason about context — "is this call an argument
of ``append_journal``?"), extracts the suppression table from the raw
source comments, and hands the tree to each applicable rule's visitor.

Suppressions
------------
``# repro-lint: disable=REP001`` (or ``disable=REP001,REP004``, or
``disable=all``) suppresses matching findings on its own line; a comment
alone on a line suppresses the line below it, so long justifications fit::

    # repro-lint: disable=REP005 -- (L, E) table built once at init
    table = loop_radii[:, None] + env_radii[None, :]

``# repro-lint: disable-file=REP005`` anywhere in a file suppresses the
rule for the whole file.  Suppressed findings are retained (flagged
``suppressed=True``) so ``repro-lint --show-suppressed`` can audit them.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.lint.config import LintConfig, load_config, package_relpath

__all__ = [
    "Finding",
    "LintError",
    "lint_source",
    "lint_paths",
    "run_lint",
    "iter_python_files",
]


class LintError(RuntimeError):
    """A file could not be linted (unreadable or syntactically invalid)."""


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def render(self) -> str:
        """The canonical one-line report form."""
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{mark}"


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)


def _suppressions(source: str) -> "tuple[Dict[int, Set[str]], Set[str]]":
    """Per-line and file-wide suppression tables from the raw source.

    A ``disable=`` comment applies to its own line; when the line holds
    nothing but the comment, it also applies to the next line.  Codes are
    upper-cased; the special code ``ALL`` matches every rule.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        kind = match.group(1)
        codes = {
            code.strip().upper()
            for code in match.group(2).split(",")
            if code.strip()
        }
        if kind == "disable-file":
            file_wide |= codes
            continue
        by_line.setdefault(lineno, set()).update(codes)
        if text[: match.start()].strip() == "":
            by_line.setdefault(lineno + 1, set()).update(codes)
    return by_line, file_wide


def _annotate_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The parent node recorded by the engine's pre-pass (None at module)."""
    return getattr(node, "_repro_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The node's ancestor chain, innermost first."""
    current = parent_of(node)
    while current is not None:
        yield current
        current = parent_of(current)


def call_name(node: ast.Call) -> str:
    """Dotted name of a call's callee: ``np.random.default_rng`` or ``open``.

    Non-name callees (subscripts, calls returning callables) yield ``""``.
    """
    parts: List[str] = []
    target = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return ".".join(reversed(parts))
    return ""


def lint_source(
    source: str,
    filename: Union[str, Path],
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one module's source text; returns findings (suppressed included).

    ``filename`` locates the module for path-scoped rules — synthetic
    names like ``repro/runtime/foo.py`` are fine for fixtures.
    """
    from repro.lint.rules import get_rules

    config = config or LintConfig()
    relpath = package_relpath(filename)
    try:
        tree = ast.parse(source, filename=str(filename))
    except SyntaxError as exc:
        raise LintError(f"{filename}: syntax error: {exc}") from exc
    _annotate_parents(tree)
    by_line, file_wide = _suppressions(source)

    findings: List[Finding] = []
    for rule in get_rules():
        rule_config = config.rule(rule.code)
        if not rule_config.applies_to(relpath):
            continue
        for line, col, message in rule.check(tree, relpath, config):
            at_line = by_line.get(line, set())
            suppressed = (
                rule.code in file_wide
                or "ALL" in file_wide
                or rule.code in at_line
                or "ALL" in at_line
            )
            findings.append(
                Finding(
                    rule=rule.code,
                    path=str(filename),
                    line=line,
                    col=col,
                    message=message,
                    suppressed=suppressed,
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Python files under ``paths`` (files pass through), sorted."""
    seen: Set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates: Iterable[Path] = sorted(entry.rglob("*.py"))
        elif entry.is_file():
            candidates = [entry]
        else:
            raise LintError(f"no such file or directory: {entry}")
        for candidate in candidates:
            if any(part.startswith(".") for part in candidate.parts):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Sequence[Union[str, Path]],
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths``."""
    config = config or LintConfig()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        findings.extend(lint_source(source, path, config))
    return findings


def run_lint(
    paths: Sequence[Union[str, Path]],
    config: Optional[LintConfig] = None,
    pyproject: Optional[Union[str, Path]] = None,
) -> List[Finding]:
    """Lint ``paths`` with the repo policy; the one-call programmatic API.

    When ``config`` is not given, the policy is resolved through
    :func:`repro.lint.config.load_config` (merging ``pyproject`` overrides
    if that file exists).  Returns all findings; callers gate on the
    unsuppressed subset: ``[f for f in findings if not f.suppressed]``.
    """
    if config is None:
        config = load_config(pyproject)
    return lint_paths(paths, config)

"""The rule engine: AST walking, the project pipeline, finding reports.

One parse per file, even for the whole-program rules: the engine builds
each module's AST, annotates every node with its parent (so per-file
rules can reason about context — "is this call an argument of
``append_journal``?"), runs the per-file rules, and distils the same
tree into a :class:`~repro.lint.graph.ModuleAnalysis` for the project
rules.  A lint run is then a five-stage pipeline:

1. **analyze** every file — per-file findings + module analysis +
   suppression comments (cacheable per file, see
   :mod:`repro.lint.cache`);
2. **assemble** the :class:`~repro.lint.graph.ProjectGraph` from the
   module analyses;
3. run the **project rules** (REP008 layering, REP009 kernel purity,
   REP010 write protocol) over the graph, scoping each finding by path;
4. apply **suppressions**, recording which comment absorbed which
   finding;
5. emit **REP011** for every disable comment (or code within one) that
   absorbed nothing.

``lint_source`` runs the same pipeline over a single-module project, so
single-file behaviour is the whole-program behaviour restricted to what
one file can show.

Suppressions
------------
``# repro-lint: disable=REP001`` (or ``disable=REP001,REP004``, or
``disable=all``) suppresses matching findings on its own line; a comment
alone on a line suppresses the line below it, so long justifications fit::

    # repro-lint: disable=REP005 -- (L, E) table built once at init
    table = loop_radii[:, None] + env_radii[None, :]

``# repro-lint: disable-file=REP005`` anywhere in a file suppresses the
rule for the whole file.  Suppressed findings are retained (flagged
``suppressed=True``) so ``repro-lint --show-suppressed`` can audit them.
Comments are read from real COMMENT tokens (via :mod:`tokenize`), so the
directive *text* appearing in a docstring — as it does in this one —
suppresses nothing and is invisible to REP011.
"""

from __future__ import annotations

import ast
import dataclasses
import io as _io
import re
import tokenize
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.lint.config import LintConfig, load_config, package_relpath
from repro.lint.graph import ModuleAnalysis, ProjectGraph, analyze_module

if TYPE_CHECKING:
    from repro.lint.cache import AnalysisCache

__all__ = [
    "Finding",
    "LintError",
    "LintResult",
    "LintStats",
    "lint_project",
    "lint_source",
    "lint_paths",
    "run_lint",
    "iter_python_files",
]


class LintError(RuntimeError):
    """A file could not be linted (unreadable or syntactically invalid)."""


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def render(self) -> str:
        """The canonical one-line report form."""
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{mark}"


@dataclasses.dataclass
class LintStats:
    """How a lint run was served (cache accounting for the CLI/CI gate)."""

    files: int = 0  #: files linted
    analyzed: int = 0  #: files parsed and analysed this run (cache misses)
    cached: int = 0  #: files served from the analysis cache


@dataclasses.dataclass
class LintResult:
    """Findings plus run accounting."""

    findings: List[Finding]
    stats: LintStats


class _Suppression:
    """One ``# repro-lint: disable`` comment and its usage bookkeeping."""

    __slots__ = ("line", "col", "kind", "codes", "own_line", "used")

    def __init__(
        self,
        line: int,
        col: int,
        kind: str,
        codes: Tuple[str, ...],
        own_line: bool,
    ) -> None:
        self.line = line
        self.col = col
        self.kind = kind  # "disable" | "disable-file"
        self.codes = codes  # upper-cased, source order, deduplicated
        self.own_line = own_line
        self.used: Set[str] = set()

    def to_row(self) -> List[Any]:
        return [self.line, self.col, self.kind, list(self.codes), self.own_line]

    @classmethod
    def from_row(cls, row: Sequence[Any]) -> "_Suppression":
        return cls(
            int(row[0]), int(row[1]), str(row[2]), tuple(row[3]), bool(row[4])
        )


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)


def _parse_directive(
    text: str, line: int, col: int, own_line: bool
) -> Optional[_Suppression]:
    match = _SUPPRESS_RE.search(text)
    if not match:
        return None
    codes: List[str] = []
    for raw in match.group(2).split(","):
        code = raw.strip().split()[0].upper() if raw.strip() else ""
        if code and code not in codes:
            codes.append(code)
    if not codes:
        return None
    return _Suppression(line, col, match.group(1), tuple(codes), own_line)


def _extract_suppressions(source: str) -> List[_Suppression]:
    """Every suppression directive, from real COMMENT tokens.

    Falls back to a line-regex scan when the file fails to tokenize
    (the AST parse will have raised first in practice).
    """
    suppressions: List[_Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(_io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            own_line = text[: match.start()].strip() == ""
            parsed = _parse_directive(text, lineno, match.start(), own_line)
            if parsed is not None:
                suppressions.append(parsed)
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        own_line = token.line[: token.start[1]].strip() == ""
        parsed = _parse_directive(
            token.string, token.start[0], token.start[1], own_line
        )
        if parsed is not None:
            suppressions.append(parsed)
    return suppressions


def _annotate_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The parent node recorded by the engine's pre-pass (None at module)."""
    return getattr(node, "_repro_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The node's ancestor chain, innermost first."""
    current = parent_of(node)
    while current is not None:
        yield current
        current = parent_of(current)


def call_name(node: ast.Call) -> str:
    """Dotted name of a call's callee: ``np.random.default_rng`` or ``open``.

    Non-name callees (subscripts, calls returning callables) yield ``""``.
    """
    parts: List[str] = []
    target = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return ".".join(reversed(parts))
    return ""


# ---------------------------------------------------------------------------
# Stage 1: per-file analysis (the cacheable unit)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _FileRecord:
    """One file's per-file results, either computed or cache-served."""

    display_path: str  #: the path findings report (as the caller gave it)
    relpath: str
    raw: List[Tuple[str, int, int, str]]  #: (rule, line, col, message)
    analysis: ModuleAnalysis
    suppressions: List[_Suppression]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "raw": [list(row) for row in self.raw],
            "analysis": self.analysis.to_dict(),
            "suppressions": [s.to_row() for s in self.suppressions],
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], display_path: str, relpath: str
    ) -> "_FileRecord":
        return cls(
            display_path=display_path,
            relpath=relpath,
            raw=[
                (str(r[0]), int(r[1]), int(r[2]), str(r[3]))
                for r in payload["raw"]
            ],
            analysis=ModuleAnalysis.from_dict(payload["analysis"]),
            suppressions=[
                _Suppression.from_row(row) for row in payload["suppressions"]
            ],
        )


def _analyze_file(
    source: str,
    filename: Union[str, Path],
    relpath: str,
    config: LintConfig,
) -> _FileRecord:
    """Parse once; run per-file rules and distil the module analysis."""
    from repro.lint.rules import get_rules

    try:
        tree = ast.parse(source, filename=str(filename))
    except SyntaxError as exc:
        raise LintError(f"{filename}: syntax error: {exc}") from exc
    _annotate_parents(tree)

    raw: List[Tuple[str, int, int, str]] = []
    for rule in get_rules():
        if not config.rule(rule.code).applies_to(relpath):
            continue
        for line, col, message in rule.check(tree, relpath, config):
            raw.append((rule.code, line, col, message))

    return _FileRecord(
        display_path=str(filename),
        relpath=relpath,
        raw=raw,
        analysis=analyze_module(tree, relpath),
        suppressions=_extract_suppressions(source),
    )


# ---------------------------------------------------------------------------
# Stages 2–5: assembly, project rules, suppressions, REP011
# ---------------------------------------------------------------------------


def _project_findings(
    records: Sequence[_FileRecord], config: LintConfig
) -> List[Tuple[_FileRecord, str, int, int, str]]:
    """Whole-program rule findings attached to their owning records."""
    from repro.lint.rules import get_project_rules

    graph = ProjectGraph([record.analysis for record in records])
    by_relpath: Dict[str, _FileRecord] = {r.relpath: r for r in records}
    found: List[Tuple[_FileRecord, str, int, int, str]] = []
    for rule in get_project_rules():
        rule_config = config.rule(rule.code)
        if not rule_config.enabled:
            continue
        for relpath, line, col, message in rule.check_project(graph, config):
            record = by_relpath.get(relpath)
            if record is None or not rule_config.applies_to(relpath):
                continue
            found.append((record, rule.code, line, col, message))
    return found


def _apply_suppressions(
    record: _FileRecord,
    raw: Iterable[Tuple[str, int, int, str]],
) -> List[Finding]:
    """Findings for one file with suppressions applied and usage recorded."""
    by_line: Dict[int, List[_Suppression]] = {}
    file_wide: List[_Suppression] = []
    for suppression in record.suppressions:
        if suppression.kind == "disable-file":
            file_wide.append(suppression)
            continue
        by_line.setdefault(suppression.line, []).append(suppression)
        if suppression.own_line:
            by_line.setdefault(suppression.line + 1, []).append(suppression)

    findings: List[Finding] = []
    for code, line, col, message in raw:
        suppressed = False
        for suppression in by_line.get(line, []) + file_wide:
            if code == "REP011":
                # Hygiene findings are only silenced by an explicit
                # REP011 — a stale `disable=all` must not absorb the
                # report of its own staleness.
                matched = [c for c in suppression.codes if c == "REP011"]
            else:
                matched = [c for c in suppression.codes if c in ("ALL", code)]
            if matched:
                suppressed = True
                suppression.used.update(matched)
        findings.append(
            Finding(
                rule=code,
                path=record.display_path,
                line=line,
                col=col,
                message=message,
                suppressed=suppressed,
            )
        )
    return findings


def _stale_suppression_rows(
    record: _FileRecord,
) -> List[Tuple[str, int, int, str]]:
    """REP011 raw findings: (code-within-comment) pairs that absorbed nothing."""
    rows: List[Tuple[str, int, int, str]] = []
    for suppression in record.suppressions:
        for code in suppression.codes:
            if code == "REP011":
                # The escape hatch must not recurse: suppressing REP011
                # is a standing decision, not a per-finding exception.
                continue
            if code in suppression.used:
                continue
            where = (
                "in this file"
                if suppression.kind == "disable-file"
                else "on this line"
            )
            rows.append(
                (
                    "REP011",
                    suppression.line,
                    suppression.col,
                    f"suppression `{suppression.kind}={code}` matches no "
                    f"finding {where}; delete the code (or the whole "
                    "comment) so the allowlist only ever shrinks",
                )
            )
    return rows


def _assemble(
    records: Sequence[_FileRecord], config: LintConfig
) -> List[Finding]:
    """Stages 2–5 over analysed files; returns the final sorted findings."""
    per_record: Dict[int, List[Tuple[str, int, int, str]]] = {
        id(record): list(record.raw) for record in records
    }
    for record, code, line, col, message in _project_findings(records, config):
        per_record[id(record)].append((code, line, col, message))

    findings: List[Finding] = []
    for record in records:
        rows = sorted(per_record[id(record)], key=lambda r: (r[1], r[2], r[0]))
        file_findings = _apply_suppressions(record, rows)
        if config.rule("REP011").applies_to(record.relpath):
            stale = _stale_suppression_rows(record)
            file_findings.extend(_apply_suppressions(record, stale))
        findings.extend(file_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    filename: Union[str, Path],
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one module's source text; returns findings (suppressed included).

    ``filename`` locates the module for path-scoped rules — synthetic
    names like ``repro/runtime/foo.py`` are fine for fixtures.  The
    whole-program rules run over the single-module project graph, so
    anything one file can violate on its own (a layering import, an
    impure kernel helper in the same module) is reported here too.
    """
    config = config or LintConfig()
    record = _analyze_file(source, filename, package_relpath(filename), config)
    return _assemble([record], config)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Python files under ``paths`` (files pass through), sorted."""
    seen: Set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates: Iterable[Path] = sorted(entry.rglob("*.py"))
        elif entry.is_file():
            candidates = [entry]
        else:
            raise LintError(f"no such file or directory: {entry}")
        for candidate in candidates:
            if any(part.startswith(".") for part in candidate.parts):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_project(
    paths: Sequence[Union[str, Path]],
    config: Optional[LintConfig] = None,
    cache: Optional["AnalysisCache"] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` as one program.

    ``cache`` is an :class:`repro.lint.cache.AnalysisCache` (or anything
    with its ``key``/``load``/``store`` shape); when given, unchanged
    files are served from their cached per-file documents and only
    edited files are re-parsed.  The project rules and suppression
    bookkeeping always run fresh — they need the whole program.
    """
    config = config or LintConfig()
    policy = config.policy_digest() if cache is not None else ""
    stats = LintStats()
    records: List[_FileRecord] = []
    for path in iter_python_files(paths):
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            source = data.decode("utf8")
        except UnicodeDecodeError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        relpath = package_relpath(path)
        stats.files += 1
        record: Optional[_FileRecord] = None
        key = ""
        if cache is not None:
            key = cache.key(relpath, data, policy)
            payload = cache.load(key)
            if payload is not None:
                try:
                    record = _FileRecord.from_payload(payload, str(path), relpath)
                except (KeyError, IndexError, TypeError, ValueError):
                    record = None
        if record is None:
            record = _analyze_file(source, path, relpath, config)
            stats.analyzed += 1
            if cache is not None:
                cache.store(key, record.to_payload())
        else:
            stats.cached += 1
        records.append(record)
    return LintResult(findings=_assemble(records, config), stats=stats)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths`` (findings only, no cache)."""
    return lint_project(paths, config).findings


def run_lint(
    paths: Sequence[Union[str, Path]],
    config: Optional[LintConfig] = None,
    pyproject: Optional[Union[str, Path]] = None,
) -> List[Finding]:
    """Lint ``paths`` with the repo policy; the one-call programmatic API.

    When ``config`` is not given, the policy is resolved through
    :func:`repro.lint.config.load_config` (merging ``pyproject`` overrides
    if that file exists).  Returns all findings; callers gate on the
    unsuppressed subset: ``[f for f in findings if not f.suppressed]``.
    """
    if config is None:
        config = load_config(pyproject)
    return lint_paths(paths, config)

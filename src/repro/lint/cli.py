"""``repro-lint`` — the command-line front end of the determinism linter.

Exit codes follow the usual linter convention:

* ``0`` — no unsuppressed findings;
* ``1`` — at least one unsuppressed finding;
* ``2`` — the run itself failed (unreadable file, syntax error, bad args).

The CLI runs with the analysis cache on by default (``.repro-lint-cache/``
next to the working directory): a warm run re-parses only edited files
and re-runs just the whole-program rules over the cached summaries.
``--no-cache`` forces a cold run; ``--stats`` prints the cache
accounting (``N files, M analyzed, K cached``) on stderr, which is what
CI asserts on.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

from repro.lint.cache import DEFAULT_CACHE_DIR, AnalysisCache
from repro.lint.config import load_config
from repro.lint.engine import Finding, LintError, LintStats, lint_project
from repro.lint.rules import get_project_rules, get_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Whole-program determinism linter for the repro codebase: "
            "seeded RNG, atomic writes, ordered iteration, wall-clock "
            "hygiene, streaming hot paths, checkpoint schema pinning, "
            "architecture layering, jit-kernel purity, durable-write "
            "protocol, suppression hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by repro-lint: disable comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--pyproject",
        default="pyproject.toml",
        help="pyproject.toml holding [tool.repro-lint] overrides",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the per-file analysis cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"analysis cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache accounting (files/analyzed/cached) to stderr",
    )
    return parser


def _report(findings: List[Finding], fmt: str, show_suppressed: bool) -> None:
    if fmt == "sarif":
        from repro.lint.sarif import to_sarif

        # SARIF always carries the suppressed findings (as dismissals).
        print(to_sarif(findings))
        return
    visible = [f for f in findings if show_suppressed or not f.suppressed]
    if fmt == "json":
        print(
            json.dumps(
                [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "message": f.message,
                        "suppressed": f.suppressed,
                    }
                    for f in visible
                ],
                indent=2,
                sort_keys=True,
            )
        )
        return
    for finding in visible:
        print(finding.render())


def _print_stats(stats: LintStats) -> None:
    print(
        f"repro-lint: {stats.files} files, {stats.analyzed} analyzed, "
        f"{stats.cached} cached",
        file=sys.stderr,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        per_file = [(r.code, r.name, r.summary, "") for r in get_rules()]
        whole = [
            (r.code, r.name, r.summary, " [whole-program]")
            for r in get_project_rules()
        ]
        for code, name, summary, tag in sorted(per_file + whole):
            print(f"{code}  {name}: {summary}{tag}")
        return 0

    cache: Optional[AnalysisCache] = None
    if not args.no_cache:
        cache = AnalysisCache(args.cache_dir)

    try:
        config = load_config(args.pyproject)
        result = lint_project(args.paths, config, cache=cache)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if cache is not None:
        cache.sweep(time.time())
    if args.stats:
        _print_stats(result.stats)

    findings = result.findings
    _report(findings, args.format, args.show_suppressed)
    unsuppressed = [f for f in findings if not f.suppressed]
    if unsuppressed:
        suppressed_count = len(findings) - len(unsuppressed)
        tail = f" ({suppressed_count} suppressed)" if suppressed_count else ""
        print(
            f"repro-lint: {len(unsuppressed)} finding(s){tail}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""``repro-lint`` — the command-line front end of the determinism linter.

Exit codes follow the usual linter convention:

* ``0`` — no unsuppressed findings;
* ``1`` — at least one unsuppressed finding;
* ``2`` — the run itself failed (unreadable file, syntax error, bad args).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.config import load_config
from repro.lint.engine import Finding, LintError, lint_paths
from repro.lint.rules import get_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism linter for the repro codebase: seeded "
            "RNG, atomic writes, ordered iteration, wall-clock hygiene, "
            "streaming hot paths, checkpoint schema pinning."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by repro-lint: disable comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--pyproject",
        default="pyproject.toml",
        help="pyproject.toml holding [tool.repro-lint] overrides",
    )
    return parser


def _report(findings: List[Finding], fmt: str, show_suppressed: bool) -> None:
    visible = [f for f in findings if show_suppressed or not f.suppressed]
    if fmt == "json":
        print(
            json.dumps(
                [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "message": f.message,
                        "suppressed": f.suppressed,
                    }
                    for f in visible
                ],
                indent=2,
                sort_keys=True,
            )
        )
        return
    for finding in visible:
        print(finding.render())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in get_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0

    try:
        config = load_config(args.pyproject)
        findings = lint_paths(args.paths, config)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    _report(findings, args.format, args.show_suppressed)
    unsuppressed = [f for f in findings if not f.suppressed]
    if unsuppressed:
        suppressed_count = len(findings) - len(unsuppressed)
        tail = f" ({suppressed_count} suppressed)" if suppressed_count else ""
        print(
            f"repro-lint: {len(unsuppressed)} finding(s){tail}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

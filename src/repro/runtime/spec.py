"""Run specifications and manifests of the sharded runtime.

A *run* is a batch of independent MOSCEM trajectories (shards) over one
benchmark target: ``target x config x seed x backend``.  :class:`RunSpec`
describes the batch declaratively; :class:`ShardSpec` is the materialised
description of one shard; :class:`RunManifest` is the JSON document the run
store persists so a run can be inspected, resumed and merged by later
processes that share none of the submitting process's memory.

Per-shard seeds are derived deterministically from the base seed through
:meth:`repro.utils.rng.RandomStreams.child`, the same derivation the
sampler uses for its own named streams — shards are therefore
statistically independent, reproducible from the manifest alone, and
independent of which worker process executes them.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Dict, List, Tuple

from repro.config import RuntimeConfig, SamplingConfig
from repro.utils.rng import RandomStreams

__all__ = [
    "RunSpec",
    "ShardSpec",
    "RunManifest",
    "MANIFEST_FORMAT_VERSION",
    "shard_name",
]

#: Version stamp of the manifest JSON layout.
MANIFEST_FORMAT_VERSION: int = 1

_RUN_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Single source of the runtime defaults shared with the CLI.
_RUNTIME_DEFAULTS = RuntimeConfig()


def shard_name(index: int) -> str:
    """Canonical shard name — the single source for directories and logs."""
    return f"shard-{int(index):04d}"


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One schedulable trajectory of a run."""

    run_id: str
    index: int
    seed: int
    backend: str

    @property
    def name(self) -> str:
        """Stable shard name used for directories and log lines."""
        return shard_name(self.index)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            run_id=str(payload["run_id"]),
            index=int(payload["index"]),
            seed=int(payload["seed"]),
            backend=str(payload["backend"]),
        )


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Declarative description of a batch of trajectories.

    Attributes
    ----------
    run_id:
        Store-unique identifier (letters, digits, ``._-``).
    target:
        Benchmark target name resolvable by
        :func:`repro.loops.targets.get_target`.
    config:
        Sampling configuration shared by every shard (each shard overrides
        only the seed).
    n_trajectories:
        Number of shards.
    base_seed:
        Master seed the per-shard seeds are derived from.
    backends:
        Backend kinds assigned to shards round-robin.
    checkpoint_every:
        Iterations between shard checkpoints (0 disables).
    workers:
        Worker processes the executor should use.
    """

    run_id: str
    target: str
    config: SamplingConfig = dataclasses.field(default_factory=SamplingConfig)
    n_trajectories: int = 4
    base_seed: int = 0
    backends: Tuple[str, ...] = _RUNTIME_DEFAULTS.backends
    checkpoint_every: int = _RUNTIME_DEFAULTS.checkpoint_every
    workers: int = _RUNTIME_DEFAULTS.workers

    def __post_init__(self) -> None:
        if not _RUN_ID_PATTERN.match(self.run_id):
            raise ValueError(
                "run_id must be non-empty and contain only letters, digits, "
                f"'.', '_' or '-': {self.run_id!r}"
            )
        if self.n_trajectories <= 0:
            raise ValueError("n_trajectories must be positive")
        # The runtime fields share RuntimeConfig's validation rules.
        RuntimeConfig(
            workers=self.workers,
            checkpoint_every=self.checkpoint_every,
            backends=self.backends,
        )
        object.__setattr__(self, "backends", tuple(self.backends))

    # ------------------------------------------------------------------
    # Shard derivation
    # ------------------------------------------------------------------

    def shard_seed(self, index: int) -> int:
        """Deterministic seed of shard ``index``.

        Mixed through ``RandomStreams.child`` so shards draw statistically
        independent streams no matter how close the base seeds of two runs
        are.
        """
        if not (0 <= index < self.n_trajectories):
            raise IndexError(f"shard index {index} out of range")
        seed = RandomStreams(self.base_seed).child(index).seed
        assert seed is not None
        return seed

    def shard(self, index: int) -> ShardSpec:
        """Materialise the spec of shard ``index``."""
        return ShardSpec(
            run_id=self.run_id,
            index=index,
            seed=self.shard_seed(index),
            backend=self.backends[index % len(self.backends)],
        )

    def shards(self) -> List[ShardSpec]:
        """All shard specs, in index order."""
        return [self.shard(i) for i in range(self.n_trajectories)]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        payload = dataclasses.asdict(self)
        payload["backends"] = list(self.backends)
        payload["config"] = dataclasses.asdict(self.config)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            run_id=str(payload["run_id"]),
            target=str(payload["target"]),
            config=SamplingConfig(**payload["config"]),
            n_trajectories=int(payload["n_trajectories"]),
            base_seed=int(payload["base_seed"]),
            backends=tuple(payload["backends"]),
            checkpoint_every=int(payload["checkpoint_every"]),
            workers=int(payload["workers"]),
        )


@dataclasses.dataclass(frozen=True)
class RunManifest:
    """The persisted description of a run: spec plus its shard table."""

    spec: RunSpec
    format_version: int = MANIFEST_FORMAT_VERSION

    @property
    def run_id(self) -> str:
        """Identifier of the described run."""
        return self.spec.run_id

    def to_dict(self) -> Dict[str, Any]:
        """JSON document body of ``manifest.json``."""
        return {
            "format_version": self.format_version,
            "spec": self.spec.to_dict(),
            "shards": [shard.to_dict() for shard in self.spec.shards()],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        """Rebuild from :meth:`to_dict` output, validating the shard table.

        The shard entries are re-derived from the spec; a manifest whose
        stored shard table disagrees (hand-edited seeds, truncated list)
        is rejected rather than silently re-derived.
        """
        version = int(payload.get("format_version", -1))
        if version != MANIFEST_FORMAT_VERSION:
            raise ValueError(
                f"unsupported manifest format_version {version}; "
                f"expected {MANIFEST_FORMAT_VERSION}"
            )
        manifest = cls(spec=RunSpec.from_dict(payload["spec"]), format_version=version)
        stored = payload.get("shards")
        if stored is not None:
            derived = [shard.to_dict() for shard in manifest.spec.shards()]
            if list(stored) != derived:
                raise ValueError(
                    "manifest shard table does not match its spec; the "
                    "manifest file appears edited or truncated"
                )
        return manifest

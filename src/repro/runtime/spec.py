"""Run and campaign specifications and manifests of the sharded runtime.

A *run* is a batch of independent MOSCEM trajectories (shards) over one
benchmark target; a *campaign* generalises it to the full grid the paper's
headline tables are built from: ``targets x configs x seeds x backends``.
:class:`RunSpec` describes a single-target batch declaratively;
:class:`Campaign` describes a multi-target grid; :class:`CellSpec` is the
materialised description of one schedulable trajectory of either (the
executor only ever sees cells); :class:`RunManifest` /
:class:`CampaignManifest` are the JSON documents the run store persists so
a batch can be inspected, resumed and merged by later processes that share
none of the submitting process's memory.

Per-shard seeds are derived deterministically from the base seed through
:meth:`repro.utils.rng.RandomStreams.child`, the same derivation the
sampler uses for its own named streams; campaign cells derive theirs from
the base seed and the cell's *workload coordinates* (target, config name,
seed label — deliberately not the backend) via :func:`campaign_cell_seed`,
so a cell's stream depends only on what it computes, never on where it
sits in the expanded grid or which implementation executes it.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.config import RuntimeConfig, SamplingConfig
from repro.islands.policy import IslandPlan, MigrationPolicy
from repro.utils.rng import RandomStreams, stable_name_key

__all__ = [
    "RunSpec",
    "ShardSpec",
    "CellSpec",
    "Campaign",
    "RunManifest",
    "CampaignManifest",
    "MANIFEST_FORMAT_VERSION",
    "CAMPAIGN_FORMAT_VERSION",
    "campaign_cell_seed",
    "shard_name",
]

#: Version stamp of the single-target run manifest JSON layout.
MANIFEST_FORMAT_VERSION: int = 1

#: Version stamp of the multi-target campaign manifest JSON layout.
CAMPAIGN_FORMAT_VERSION: int = 2

_RUN_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Single source of the runtime defaults shared with the CLI.
_RUNTIME_DEFAULTS = RuntimeConfig()


def shard_name(index: int) -> str:
    """Canonical shard name — the single source for directories and logs."""
    return f"shard-{int(index):04d}"


def campaign_cell_seed(
    base_seed: int, target: str, config_name: str, seed_index: int
) -> int:
    """Deterministic RNG seed of one campaign cell.

    The cell's workload coordinates — *what* it computes — are hashed into
    the :class:`numpy.random.SeedSequence` spawn key, so the seed is
    invariant under re-ordering of the campaign's axis lists, independent
    of the cell's flat index, and statistically independent across cells no
    matter how similar two coordinates are.

    The backend is deliberately **not** part of the derivation: cells that
    differ only in backend run the identical trajectory workload, which is
    what makes the backend axis usable for paired timing comparisons
    (Fig. 4's CPU vs CPU-GPU times) and functional-equivalence checks.
    Independent replicates belong on the seeds axis.
    """
    low, high = stable_name_key(f"{target}\x1f{config_name}")
    seq = np.random.SeedSequence(
        entropy=int(base_seed), spawn_key=(low, high, int(seed_index))
    )
    return int(seq.generate_state(1)[0])


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One schedulable trajectory of a run."""

    run_id: str
    index: int
    seed: int
    backend: str

    @property
    def name(self) -> str:
        """Stable shard name used for directories and log lines."""
        return shard_name(self.index)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            run_id=str(payload["run_id"]),
            index=int(payload["index"]),
            seed=int(payload["seed"]),
            backend=str(payload["backend"]),
        )


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One fully materialised, schedulable trajectory.

    This is the unit the executor runs: it carries everything a worker
    process needs to rebuild the sampler — target name, sampling
    configuration, derived RNG seed, backend kind and checkpoint cadence —
    plus the grid coordinates (``config_name``, ``seed_index``) that let
    result consumers group cells back into the campaign's axes.  Both
    :meth:`RunSpec.cell` and :meth:`Campaign.cell` produce these.
    """

    run_id: str
    index: int
    target: str
    config: SamplingConfig
    seed: int
    backend: str
    config_name: str = "config"
    seed_index: int = 0
    checkpoint_every: int = _RUNTIME_DEFAULTS.checkpoint_every
    #: Materialised island-migration plan, or ``None`` for an independent
    #: cell (the default — and today's behaviour, bit-identically).
    migration: Optional[IslandPlan] = None

    @property
    def name(self) -> str:
        """Stable shard name used for directories and log lines."""
        return shard_name(self.index)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready).

        The ``migration`` key is omitted for independent cells, so cell
        tables of pre-island manifests round-trip byte-identically.
        """
        payload = dataclasses.asdict(self)
        payload["config"] = dataclasses.asdict(self.config)
        if self.migration is None:
            payload.pop("migration", None)
        else:
            payload["migration"] = self.migration.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CellSpec":
        """Rebuild from :meth:`to_dict` output."""
        migration = payload.get("migration")
        return cls(
            run_id=str(payload["run_id"]),
            index=int(payload["index"]),
            target=str(payload["target"]),
            config=SamplingConfig(**payload["config"]),
            seed=int(payload["seed"]),
            backend=str(payload["backend"]),
            config_name=str(payload.get("config_name", "config")),
            seed_index=int(payload.get("seed_index", 0)),
            checkpoint_every=int(
                payload.get("checkpoint_every", _RUNTIME_DEFAULTS.checkpoint_every)
            ),
            migration=(
                None if migration is None else IslandPlan.from_dict(migration)
            ),
        )


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Declarative description of a batch of trajectories.

    Attributes
    ----------
    run_id:
        Store-unique identifier (letters, digits, ``._-``).
    target:
        Benchmark target name resolvable by
        :func:`repro.loops.targets.get_target`.
    config:
        Sampling configuration shared by every shard (each shard overrides
        only the seed).
    n_trajectories:
        Number of shards.
    base_seed:
        Master seed the per-shard seeds are derived from.
    backends:
        Backend kinds assigned to shards round-robin.
    checkpoint_every:
        Iterations between shard checkpoints (0 disables).
    workers:
        Worker processes the executor should use.
    """

    run_id: str
    target: str
    config: SamplingConfig = dataclasses.field(default_factory=SamplingConfig)
    n_trajectories: int = 4
    base_seed: int = 0
    backends: Tuple[str, ...] = _RUNTIME_DEFAULTS.backends
    checkpoint_every: int = _RUNTIME_DEFAULTS.checkpoint_every
    workers: int = _RUNTIME_DEFAULTS.workers

    def __post_init__(self) -> None:
        if not _RUN_ID_PATTERN.match(self.run_id):
            raise ValueError(
                "run_id must be non-empty and contain only letters, digits, "
                f"'.', '_' or '-': {self.run_id!r}"
            )
        if self.n_trajectories <= 0:
            raise ValueError("n_trajectories must be positive")
        # The runtime fields share RuntimeConfig's validation rules.
        RuntimeConfig(
            workers=self.workers,
            checkpoint_every=self.checkpoint_every,
            backends=self.backends,
        )
        object.__setattr__(self, "backends", tuple(self.backends))

    # ------------------------------------------------------------------
    # Shard derivation
    # ------------------------------------------------------------------

    def shard_seed(self, index: int) -> int:
        """Deterministic seed of shard ``index``.

        Mixed through ``RandomStreams.child`` so shards draw statistically
        independent streams no matter how close the base seeds of two runs
        are.
        """
        if not (0 <= index < self.n_trajectories):
            raise IndexError(f"shard index {index} out of range")
        seed = RandomStreams(self.base_seed).child(index).seed
        assert seed is not None
        return seed

    def shard(self, index: int) -> ShardSpec:
        """Materialise the spec of shard ``index``."""
        return ShardSpec(
            run_id=self.run_id,
            index=index,
            seed=self.shard_seed(index),
            backend=self.backends[index % len(self.backends)],
        )

    def shards(self) -> List[ShardSpec]:
        """All shard specs, in index order."""
        return [self.shard(i) for i in range(self.n_trajectories)]

    def cell(self, index: int) -> CellSpec:
        """The executor-facing cell of shard ``index``."""
        shard = self.shard(index)
        return CellSpec(
            run_id=self.run_id,
            index=index,
            target=self.target,
            config=self.config,
            seed=shard.seed,
            backend=shard.backend,
            config_name="config",
            seed_index=index,
            checkpoint_every=self.checkpoint_every,
        )

    def cells(self) -> List[CellSpec]:
        """All executor-facing cells, in index order."""
        return [self.cell(i) for i in range(self.n_trajectories)]

    def manifest(self) -> "RunManifest":
        """The manifest document describing this run."""
        return RunManifest(spec=self)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        payload = dataclasses.asdict(self)
        payload["backends"] = list(self.backends)
        payload["config"] = dataclasses.asdict(self.config)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            run_id=str(payload["run_id"]),
            target=str(payload["target"]),
            config=SamplingConfig(**payload["config"]),
            n_trajectories=int(payload["n_trajectories"]),
            base_seed=int(payload["base_seed"]),
            backends=tuple(payload["backends"]),
            checkpoint_every=int(payload["checkpoint_every"]),
            workers=int(payload["workers"]),
        )


@dataclasses.dataclass(frozen=True)
class RunManifest:
    """The persisted description of a run: spec plus its shard table."""

    spec: RunSpec
    format_version: int = MANIFEST_FORMAT_VERSION

    @property
    def run_id(self) -> str:
        """Identifier of the described run."""
        return self.spec.run_id

    def to_dict(self) -> Dict[str, Any]:
        """JSON document body of ``manifest.json``."""
        return {
            "format_version": self.format_version,
            "spec": self.spec.to_dict(),
            "shards": [shard.to_dict() for shard in self.spec.shards()],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        """Rebuild from :meth:`to_dict` output, validating the shard table.

        The shard entries are re-derived from the spec; a manifest whose
        stored shard table disagrees (hand-edited seeds, truncated list)
        is rejected rather than silently re-derived.
        """
        version = int(payload.get("format_version", -1))
        if version != MANIFEST_FORMAT_VERSION:
            raise ValueError(
                f"unsupported manifest format_version {version}; "
                f"expected {MANIFEST_FORMAT_VERSION}"
            )
        manifest = cls(spec=RunSpec.from_dict(payload["spec"]), format_version=version)
        stored = payload.get("shards")
        if stored is not None:
            derived = [shard.to_dict() for shard in manifest.spec.shards()]
            if list(stored) != derived:
                raise ValueError(
                    "manifest shard table does not match its spec; the "
                    "manifest file appears edited or truncated"
                )
        return manifest


@dataclasses.dataclass(frozen=True)
class Campaign:
    """Declarative multi-target grid: ``targets x configs x seeds x backends``.

    One campaign is one paper table: every combination of a benchmark
    target, a named sampling configuration, a seed label and a backend kind
    becomes one independent trajectory (a :class:`CellSpec`), persisted and
    scheduled exactly like the shards of a single-target :class:`RunSpec`.

    Attributes
    ----------
    campaign_id:
        Store-unique identifier (letters, digits, ``._-``).
    targets:
        Benchmark target names resolvable by
        :func:`repro.loops.targets.get_target`.
    configs:
        Ordered ``(name, SamplingConfig)`` pairs; the name is the grid
        coordinate results are grouped by (e.g. ``"pop512"``).
    seeds:
        Seed *labels* (replicate indices).  The actual per-cell RNG seed is
        derived from ``base_seed`` and the cell coordinates through
        :func:`campaign_cell_seed`.
    backends:
        Backend kinds; every cell of the grid runs on every backend.
    base_seed:
        Master seed all cell seeds are derived from.
    checkpoint_every:
        Iterations between cell checkpoints (0 disables).
    workers:
        Worker processes the executor should use.
    migration:
        Optional :class:`~repro.islands.policy.MigrationPolicy` turning the
        replicates of each ``(target, config, backend)`` workload group —
        the seeds axis — into a cooperating archipelago.  ``None`` or
        ``MigrationPolicy.none()`` keeps every cell fully independent
        (bit-identical to pre-island campaigns).  Migration lives here, on
        the campaign, deliberately *not* in :class:`SamplingConfig`: cell
        seeds derive from workload coordinates only, so toggling migration
        never changes which trajectories the grid runs.
    """

    campaign_id: str
    targets: Tuple[str, ...]
    configs: Tuple[Tuple[str, SamplingConfig], ...]
    seeds: Tuple[int, ...] = (0,)
    backends: Tuple[str, ...] = _RUNTIME_DEFAULTS.backends
    base_seed: int = 0
    checkpoint_every: int = _RUNTIME_DEFAULTS.checkpoint_every
    workers: int = _RUNTIME_DEFAULTS.workers
    migration: Optional[MigrationPolicy] = None

    def __post_init__(self) -> None:
        if not _RUN_ID_PATTERN.match(self.campaign_id):
            raise ValueError(
                "campaign_id must be non-empty and contain only letters, "
                f"digits, '.', '_' or '-': {self.campaign_id!r}"
            )
        object.__setattr__(self, "targets", tuple(self.targets))
        object.__setattr__(
            self, "configs", tuple((str(n), c) for n, c in self.configs)
        )
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        for axis_name in ("targets", "configs", "seeds", "backends"):
            axis = getattr(self, axis_name)
            if not axis:
                raise ValueError(f"campaign {axis_name} must be non-empty")
        names = [name for name, _config in self.configs]
        # Backend labels are compared after alias resolution: "gpu" and
        # "cpu-gpu" name the same implementation, and (backend being
        # excluded from the seed derivation) duplicated backends would run
        # bit-identical trajectories twice and double-count every result.
        from repro.api.registry import BACKENDS

        backend_labels = [BACKENDS.canonical(b) for b in self.backends]
        for axis_name, labels in (
            ("targets", self.targets),
            ("configs", names),
            ("seeds", self.seeds),
            ("backends", backend_labels),
        ):
            if len(set(labels)) != len(labels):
                raise ValueError(
                    f"campaign {axis_name} contain duplicates: {labels!r}"
                )
        for _name, config in self.configs:
            if not isinstance(config, SamplingConfig):
                raise TypeError("campaign configs must map names to SamplingConfig")
        # SeedSequence only accepts non-negative entropy/keys; catch it here
        # with a message naming the campaign field instead of deep in numpy.
        if self.base_seed < 0:
            raise ValueError(f"campaign base_seed must be >= 0: {self.base_seed}")
        negative = [s for s in self.seeds if s < 0]
        if negative:
            raise ValueError(f"campaign seeds must be >= 0: {negative}")
        # The runtime fields share RuntimeConfig's validation rules.
        RuntimeConfig(
            workers=self.workers,
            checkpoint_every=self.checkpoint_every,
            backends=self.backends,
        )
        object.__setattr__(self, "backends", tuple(self.backends))
        object.__setattr__(self, "_config_by_name", dict(self.configs))
        if self.migration is not None:
            if not isinstance(self.migration, MigrationPolicy):
                raise TypeError(
                    "campaign migration must be a MigrationPolicy (or None)"
                )
            if self.migration.enabled and len(self.seeds) >= 2:
                if self.checkpoint_every <= 0:
                    raise ValueError(
                        "island migration rides the checkpoint cadence; "
                        "set checkpoint_every > 0 (or disable migration)"
                    )
                in_degree = self.migration.max_in_degree(len(self.seeds))
                for name, config in self.configs:
                    if self.migration.elite_k * in_degree >= config.population_size:
                        raise ValueError(
                            f"config {name!r}: up to "
                            f"{self.migration.elite_k * in_degree} immigrants "
                            f"per exchange would overwhelm a population of "
                            f"{config.population_size}; lower elite_k or "
                            "grow the population"
                        )

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------

    @property
    def run_id(self) -> str:
        """Alias so campaigns share the store/executor code paths of runs."""
        return self.campaign_id

    @property
    def n_trajectories(self) -> int:
        """Total number of cells in the expanded grid."""
        return (
            len(self.targets) * len(self.configs) * len(self.seeds) * len(self.backends)
        )

    def coordinates(self, index: int) -> Tuple[str, str, int, str]:
        """Grid coordinates ``(target, config_name, seed, backend)`` of a cell.

        Cells are enumerated target-major, backend-minor: the flat index is
        ``((t * n_configs + c) * n_seeds + s) * n_backends + b``.
        """
        if not (0 <= index < self.n_trajectories):
            raise IndexError(f"cell index {index} out of range")
        index, b = divmod(index, len(self.backends))
        index, s = divmod(index, len(self.seeds))
        t, c = divmod(index, len(self.configs))
        return (
            self.targets[t],
            self.configs[c][0],
            self.seeds[s],
            self.backends[b],
        )

    def _island_plan(self, index: int) -> Optional[IslandPlan]:
        """The migration plan of the cell at flat index ``index``.

        Islands are the *seeds* axis of one workload group — the cells
        sharing a target, config and backend.  A single-replicate group
        has nobody to exchange with, so its cells stay independent.
        """
        if self.migration is None or not self.migration.enabled:
            return None
        n_islands = len(self.seeds)
        if n_islands < 2:
            return None
        rest, b = divmod(index, len(self.backends))
        group_base, s = divmod(rest, n_islands)
        target, config_name, _seed, backend = self.coordinates(index)
        peers = tuple(
            (group_base * n_islands + peer_s) * len(self.backends) + b
            for peer_s in range(n_islands)
        )
        return IslandPlan(
            policy=self.migration,
            island_index=s,
            n_islands=n_islands,
            group=f"{target}|{config_name}|{backend}",
            peers=peers,
            base_seed=self.base_seed,
        )

    def cell(self, index: int) -> CellSpec:
        """Materialise the cell at flat index ``index``."""
        target, config_name, seed_label, backend = self.coordinates(index)
        config = self._config_by_name[config_name]
        return CellSpec(
            run_id=self.campaign_id,
            index=index,
            target=target,
            config=config,
            seed=campaign_cell_seed(self.base_seed, target, config_name, seed_label),
            backend=backend,
            config_name=config_name,
            seed_index=seed_label,
            checkpoint_every=self.checkpoint_every,
            migration=self._island_plan(index),
        )

    def cells(self) -> List[CellSpec]:
        """All cells of the expanded grid, in flat-index order.

        The expansion (including every cell's seed derivation) is computed
        once and cached — status polls and daemon drain passes re-read it
        on every tick, and the campaign is frozen.
        """
        cached = self.__dict__.get("_cells_cache")
        if cached is None:
            cached = tuple(self.cell(i) for i in range(self.n_trajectories))
            object.__setattr__(self, "_cells_cache", cached)
        return list(cached)

    def manifest(self) -> "CampaignManifest":
        """The manifest document describing this campaign."""
        return CampaignManifest(spec=self)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready).

        The ``migration`` key is omitted when unset, so pre-island
        manifests round-trip byte-identically.
        """
        payload = {
            "campaign_id": self.campaign_id,
            "targets": list(self.targets),
            "configs": [
                {"name": name, "config": dataclasses.asdict(config)}
                for name, config in self.configs
            ],
            "seeds": list(self.seeds),
            "backends": list(self.backends),
            "base_seed": self.base_seed,
            "checkpoint_every": self.checkpoint_every,
            "workers": self.workers,
        }
        if self.migration is not None:
            payload["migration"] = self.migration.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Campaign":
        """Rebuild from :meth:`to_dict` output."""
        migration = payload.get("migration")
        return cls(
            campaign_id=str(payload["campaign_id"]),
            targets=tuple(payload["targets"]),
            configs=tuple(
                (str(entry["name"]), SamplingConfig(**entry["config"]))
                for entry in payload["configs"]
            ),
            seeds=tuple(payload["seeds"]),
            backends=tuple(payload["backends"]),
            base_seed=int(payload["base_seed"]),
            checkpoint_every=int(payload["checkpoint_every"]),
            workers=int(payload["workers"]),
            migration=(
                None if migration is None else MigrationPolicy.from_dict(migration)
            ),
        )


@dataclasses.dataclass(frozen=True)
class CampaignManifest:
    """The persisted description of a campaign: spec plus its cell table."""

    spec: Campaign
    format_version: int = CAMPAIGN_FORMAT_VERSION

    @property
    def run_id(self) -> str:
        """Identifier of the described campaign."""
        return self.spec.campaign_id

    def to_dict(self) -> Dict[str, Any]:
        """JSON document body of ``manifest.json``."""
        return {
            "format_version": self.format_version,
            "spec": self.spec.to_dict(),
            "cells": [cell.to_dict() for cell in self.spec.cells()],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignManifest":
        """Rebuild from :meth:`to_dict` output, validating the cell table.

        Like :meth:`RunManifest.from_dict`, a manifest whose stored cell
        table disagrees with its spec (hand-edited seeds, truncated grid)
        is rejected rather than silently re-derived.
        """
        version = int(payload.get("format_version", -1))
        if version != CAMPAIGN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported campaign manifest format_version {version}; "
                f"expected {CAMPAIGN_FORMAT_VERSION}"
            )
        manifest = cls(
            spec=Campaign.from_dict(payload["spec"]), format_version=version
        )
        stored = payload.get("cells")
        if stored is not None:
            derived = [cell.to_dict() for cell in manifest.spec.cells()]
            if list(stored) != derived:
                raise ValueError(
                    "campaign manifest cell table does not match its spec; "
                    "the manifest file appears edited or truncated"
                )
        return manifest

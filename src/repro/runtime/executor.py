"""Process-pool shard executor.

The executor fans the shards of a :class:`~repro.runtime.spec.RunSpec` out
across worker processes.  Each worker is self-sufficient: it rebuilds the
target from its registry name, constructs its own backend through
:func:`repro.backends.make_backend`, and talks to the run store only
through the file system — the only data crossing the process boundary are
small picklable dicts (shard payloads in, shard summaries out), so the
executor scales to decoy sets far larger than a pipe buffer.

Execution of one shard:

1. if the shard already has a result on disk, return its summary (idempotent
   re-submits and resumes);
2. if a checkpoint exists, restore the :class:`SamplerState` from it —
   resumed trajectories are bit-identical to uninterrupted ones;
3. run the sampler, checkpointing every ``checkpoint_every`` iterations and
   updating the shard's status document (the live progress ``repro-batch
   status`` reads);
4. harvest the structurally distinct non-dominated decoys and write the
   shard result.

:func:`parallel_map` is the shared fan-out primitive; the experiment runner
reuses it to parallelise multi-target tables.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro.analysis.aggregation import merge_decoy_sets, merge_timing_ledgers
from repro.moscem.decoys import DecoySet
from repro.runtime.checkpoint import has_checkpoint, load_checkpoint, save_checkpoint
from repro.runtime.spec import RunSpec, ShardSpec, shard_name
from repro.runtime.store import RunStore
from repro.utils.logging import get_logger

__all__ = ["ShardExecutor", "ShardFailure", "parallel_map", "run_shard"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Callback receiving one progress line per event.
ProgressFn = Callable[[str], None]


class ShardFailure(RuntimeError):
    """One or more shards of a run failed."""


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: int,
    on_result: Optional[Callable[[int, _R], None]] = None,
) -> List[_R]:
    """Map ``fn`` over ``items`` across worker processes, in input order.

    ``fn`` and every item must be picklable.  With ``workers <= 1`` (or a
    single item) the map runs inline in the calling process, which keeps
    tracebacks direct and avoids pool start-up for trivial batches.
    ``on_result`` is called as ``(index, result)`` the moment an item
    finishes — out of order — which is what streams per-shard progress.
    """
    items = list(items)
    results: List[Any] = [None] * len(items)
    if not items:
        return results
    if workers <= 1 or len(items) == 1:
        for index, item in enumerate(items):
            results[index] = fn(item)
            if on_result is not None:
                on_result(index, results[index])
        return results

    max_workers = min(workers, len(items))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {pool.submit(fn, item): index for index, item in enumerate(items)}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                results[index] = future.result()
                if on_result is not None:
                    on_result(index, results[index])
    return results


# ---------------------------------------------------------------------------
# Shard execution (runs inside worker processes)
# ---------------------------------------------------------------------------


def _build_sampler(spec: RunSpec, shard: ShardSpec):
    """Construct the target, backend and sampler for one shard."""
    from repro.backends import make_backend
    from repro.loops.targets import get_target
    from repro.moscem.sampler import MOSCEMSampler
    from repro.scoring import default_multi_score

    target = get_target(spec.target)
    config = spec.config
    multi_score = default_multi_score(target, block_size=config.kernel_block_size)
    backend = make_backend(shard.backend, target, multi_score, config)
    return MOSCEMSampler(
        target, config=config, multi_score=multi_score, backend=backend
    )


def run_shard(store: RunStore, spec: RunSpec, index: int) -> Dict[str, Any]:
    """Execute (or resume) one shard to completion; returns its summary.

    Runs inside a worker process, but is equally callable inline — the
    executor with ``workers=1`` and the tests use the same code path.
    """
    shard = spec.shard(index)
    shard_dir = store.shard_dir(spec.run_id, index)

    if store.has_shard_result(spec.run_id, index):
        return store.load_shard_summary(spec.run_id, index)

    sampler = _build_sampler(spec, shard)
    state = None
    resumed_from = None
    if has_checkpoint(shard_dir):
        state = load_checkpoint(shard_dir, sampler)
        resumed_from = state.iteration

    store.write_shard_status(
        spec.run_id,
        index,
        state="running",
        pid=os.getpid(),
        iteration=0 if state is None else state.iteration,
        iterations=spec.config.iterations,
        backend=shard.backend,
        seed=shard.seed,
        resumed_from=resumed_from,
    )

    def _on_iteration(live_state) -> None:
        if (
            spec.checkpoint_every > 0
            and live_state.iteration % spec.checkpoint_every == 0
            and live_state.iteration < spec.config.iterations
        ):
            save_checkpoint(
                shard_dir,
                live_state,
                extra={"run_id": spec.run_id, "shard": index, "target": spec.target},
            )
            store.write_shard_status(
                spec.run_id,
                index,
                state="running",
                pid=os.getpid(),
                iteration=live_state.iteration,
                iterations=spec.config.iterations,
                backend=shard.backend,
                seed=shard.seed,
                resumed_from=resumed_from,
                checkpoint_iteration=live_state.iteration,
            )

    result = sampler.run(seed=shard.seed, state=state, on_iteration=_on_iteration)
    decoys = result.distinct_non_dominated(trajectory=index)

    summary = {
        "run_id": spec.run_id,
        "shard": index,
        "backend": result.backend_name,
        "seed": shard.seed,
        "iterations": spec.config.iterations,
        "resumed_from": resumed_from,
        # For resumed shards this covers only the final segment (the time
        # before the interruption died with the interrupted process).
        "wall_seconds": result.wall_seconds,
        "best_rmsd": result.best_rmsd,
        "best_front_rmsd": result.best_non_dominated_rmsd,
        "n_non_dominated": result.n_non_dominated(),
        "final_acceptance": (
            result.acceptance_history[-1] if result.acceptance_history else None
        ),
    }
    store.save_shard_result(
        spec.run_id,
        index,
        decoys,
        summary,
        host_ledger=result.host_ledger,
        kernel_ledger=result.kernel_ledger,
    )
    store.write_shard_status(
        spec.run_id,
        index,
        state="done",
        pid=os.getpid(),
        iteration=spec.config.iterations,
        iterations=spec.config.iterations,
        backend=shard.backend,
        seed=shard.seed,
        resumed_from=resumed_from,
        n_decoys=len(decoys),
    )
    summary["n_decoys"] = len(decoys)
    return summary


def _shard_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Picklable worker entry point: run one shard, never raise.

    Exceptions are folded into an ``{"error": ...}`` summary (and the
    shard's status document) so one bad shard cannot poison the pool.
    """
    store = RunStore(payload["store_root"])
    spec = RunSpec.from_dict(payload["spec"])
    index = int(payload["index"])
    try:
        return run_shard(store, spec, index)
    except Exception as exc:  # noqa: BLE001 - reported via the summary
        detail = traceback.format_exc(limit=20)
        try:
            store.write_shard_status(
                spec.run_id, index, state="failed", error=str(exc), detail=detail
            )
        except OSError:
            pass
        return {
            "run_id": spec.run_id,
            "shard": index,
            "error": f"{type(exc).__name__}: {exc}",
            "detail": detail,
        }


# ---------------------------------------------------------------------------
# The executor (runs in the submitting process)
# ---------------------------------------------------------------------------


class ShardExecutor:
    """Fans the shards of a run out across worker processes."""

    def __init__(
        self,
        store: RunStore,
        workers: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.store = store
        self.workers = workers
        self.progress = progress
        self._logger = get_logger("runtime.executor")

    def _emit(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)
        else:
            self._logger.info("%s", line)

    def execute(self, spec: RunSpec, indices: Optional[Sequence[int]] = None) -> List[Dict[str, Any]]:
        """Run the (remaining) shards of ``spec``; returns shard summaries.

        Shards with results on disk are skipped (their stored summaries are
        returned), which is what makes ``execute`` double as *resume*: a
        killed run re-executes only its unfinished shards, each continuing
        from its latest checkpoint.  Raises :class:`ShardFailure` if any
        shard errors.
        """
        if indices is None:
            indices = range(spec.n_trajectories)
        workers = self.workers if self.workers is not None else spec.workers
        spec_dict = spec.to_dict()
        pending = []
        done = []
        for index in indices:
            if self.store.has_shard_result(spec.run_id, index):
                done.append(int(index))
                self._emit(f"{spec.run_id}/{shard_name(index)}: already complete")
            else:
                pending.append(
                    {
                        "store_root": str(self.store.root),
                        "spec": spec_dict,
                        "index": int(index),
                    }
                )
        self._emit(
            f"{spec.run_id}: {len(pending)} shard(s) to run on "
            f"{min(workers, max(len(pending), 1))} worker(s)"
        )

        def _report(_pos: int, summary: Dict[str, Any]) -> None:
            shard = shard_name(summary.get("shard", -1))
            if "error" in summary:
                self._emit(f"{spec.run_id}/{shard}: FAILED {summary['error']}")
            else:
                resumed = summary.get("resumed_from")
                suffix = f" (resumed from iter {resumed})" if resumed else ""
                self._emit(
                    f"{spec.run_id}/{shard}: done in "
                    f"{summary.get('wall_seconds', 0.0):.2f}s, "
                    f"{summary.get('n_decoys', 0)} decoys{suffix}"
                )

        fresh = parallel_map(_shard_task, pending, workers, on_result=_report)
        failures = [s for s in fresh if "error" in s]
        if failures:
            raise ShardFailure(
                f"{len(failures)} shard(s) of run {spec.run_id!r} failed: "
                + "; ".join(
                    f"shard {s['shard']}: {s['error']}" for s in failures
                )
            )
        summaries = {s["shard"]: s for s in fresh}
        for index in done:
            summaries[index] = self.store.load_shard_summary(spec.run_id, index)
        return [summaries[i] for i in sorted(summaries)]

    def merge(self, run_id: str, distinct_only: bool = False) -> DecoySet:
        """Merge every completed shard's decoys; persists and returns the set.

        The default is the plain union of the per-shard sets (shard order);
        ``distinct_only`` re-applies the cross-shard distinctness rule.
        """
        manifest = self.store.load_manifest(run_id)
        spec = manifest.spec
        shard_sets = []
        shard_ledgers = []
        for index in range(spec.n_trajectories):
            if not self.store.has_shard_result(run_id, index):
                raise ShardFailure(
                    f"cannot merge run {run_id!r}: shard {index} has no result "
                    "(resume the run first)"
                )
            _summary, decoys, ledgers = self.store.load_shard_result(run_id, index)
            shard_sets.append(decoys)
            shard_ledgers.append(ledgers)
        merged = merge_decoy_sets(shard_sets, distinct_only=distinct_only)
        kernel = merge_timing_ledgers(l["kernel"] for l in shard_ledgers)
        host = merge_timing_ledgers(l["host"] for l in shard_ledgers)
        self.store.save_merged(
            run_id,
            merged,
            {
                "run_id": run_id,
                "distinct_only": distinct_only,
                "n_shards": spec.n_trajectories,
                "per_shard_decoys": [len(s) for s in shard_sets],
                "best_rmsd": merged.best_rmsd(),
                "kernel_ledger_seconds": kernel.total(),
                "host_ledger_seconds": host.total(),
            },
        )
        self._emit(
            f"{run_id}: merged {sum(len(s) for s in shard_sets)} shard decoys "
            f"into {len(merged)} ({'distinct' if distinct_only else 'union'})"
        )
        return merged

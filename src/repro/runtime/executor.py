"""Process-pool shard executor.

The executor fans the cells of a :class:`~repro.runtime.spec.RunSpec` or
:class:`~repro.runtime.spec.Campaign` out across worker processes.  Each
worker is self-sufficient: it rebuilds the target from its registry name,
constructs its own backend through :func:`repro.backends.make_backend`, and
talks to the run store only through the file system — the only data
crossing the process boundary are small picklable dicts (cell payloads in,
cell summaries out), so the executor scales to decoy sets far larger than
a pipe buffer.  Workers keep a process-level cache of assembled scoring
stacks keyed by ``(target, block size)`` (targets and knowledge bases are
already cached underneath), so a worker that executes many cells — or
drains many campaigns in one daemon batch — pays the table-building cost
once per target rather than once per trajectory.

Execution of one cell:

1. if the cell already has a result on disk, return its summary (idempotent
   re-submits and resumes);
2. if a checkpoint exists, restore the :class:`SamplerState` from it —
   resumed trajectories are bit-identical to uninterrupted ones;
3. run the sampler, checkpointing every ``checkpoint_every`` iterations and
   updating the cell's status document (the live progress ``repro-batch
   status`` / ``repro-campaign status`` read);
4. harvest the structurally distinct non-dominated decoys and write the
   cell result.

:func:`parallel_map` is the shared fan-out primitive; the experiment runner
and the campaign daemon reuse it.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro.analysis.aggregation import merge_decoy_sets, merge_timing_ledgers
from repro.moscem.decoys import DecoySet
from repro.runtime.checkpoint import has_checkpoint, load_checkpoint, save_checkpoint
from repro.runtime.spec import Campaign, CellSpec, RunSpec, ShardSpec, shard_name
from repro.runtime.store import RunStore
from repro.utils.logging import get_logger

__all__ = [
    "ShardExecutor",
    "ShardFailure",
    "parallel_map",
    "run_cell",
    "run_shard",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Callback receiving one progress line per event.
ProgressFn = Callable[[str], None]


class ShardFailure(RuntimeError):
    """One or more shards of a run failed."""


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: int,
    on_result: Optional[Callable[[int, _R], None]] = None,
) -> List[_R]:
    """Map ``fn`` over ``items`` across worker processes, in input order.

    ``fn`` and every item must be picklable.  With ``workers <= 1`` (or a
    single item) the map runs inline in the calling process, which keeps
    tracebacks direct and avoids pool start-up for trivial batches.
    ``on_result`` is called as ``(index, result)`` the moment an item
    finishes — out of order — which is what streams per-shard progress.
    """
    items = list(items)
    results: List[Any] = [None] * len(items)
    if not items:
        return results
    if workers <= 1 or len(items) == 1:
        for index, item in enumerate(items):
            results[index] = fn(item)
            if on_result is not None:
                on_result(index, results[index])
        return results

    max_workers = min(workers, len(items))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {pool.submit(fn, item): index for index, item in enumerate(items)}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                results[index] = future.result()
                if on_result is not None:
                    on_result(index, results[index])
    return results


# ---------------------------------------------------------------------------
# Shard execution (runs inside worker processes)
# ---------------------------------------------------------------------------


#: Per-worker cache of assembled scoring stacks keyed by (target, block size).
#: Scoring functions are bound to a target and hold only precomputed lookup
#: tables, so sharing one stack across the cells a worker executes — within
#: a campaign and across campaigns drained in one batch — is safe and skips
#: the repeated knowledge-table assembly.
_MULTI_SCORE_CACHE: Dict[Any, Any] = {}


def _cached_multi_score(target_name: str, block_size: int):
    from repro.loops.targets import get_target
    from repro.scoring import default_multi_score

    key = (target_name, int(block_size))
    if key not in _MULTI_SCORE_CACHE:
        _MULTI_SCORE_CACHE[key] = default_multi_score(
            get_target(target_name), block_size=block_size
        )
    return _MULTI_SCORE_CACHE[key]


def _build_sampler(cell: CellSpec):
    """Construct the target, backend and sampler for one cell.

    The target and scoring stack come from the per-worker caches; the
    backend is always fresh because it accumulates per-run kernel ledgers.
    """
    from repro.backends import make_backend
    from repro.loops.targets import get_target
    from repro.moscem.sampler import MOSCEMSampler

    target = get_target(cell.target)
    config = cell.config
    multi_score = _cached_multi_score(cell.target, config.kernel_block_size)
    backend = make_backend(cell.backend, target, multi_score, config)
    return MOSCEMSampler(
        target, config=config, multi_score=multi_score, backend=backend
    )


def run_cell(store: RunStore, cell: CellSpec) -> Dict[str, Any]:
    """Execute (or resume) one cell to completion; returns its summary.

    Runs inside a worker process, but is equally callable inline — the
    executor with ``workers=1`` and the tests use the same code path.
    """
    index = cell.index
    shard_dir = store.shard_dir(cell.run_id, index)

    if store.has_shard_result(cell.run_id, index):
        return store.load_shard_summary(cell.run_id, index)

    sampler = _build_sampler(cell)
    state = None
    resumed_from = None
    if has_checkpoint(shard_dir):
        state = load_checkpoint(shard_dir, sampler)
        resumed_from = state.iteration

    store.write_shard_status(
        cell.run_id,
        index,
        state="running",
        pid=os.getpid(),
        iteration=0 if state is None else state.iteration,
        iterations=cell.config.iterations,
        target=cell.target,
        backend=cell.backend,
        seed=cell.seed,
        resumed_from=resumed_from,
    )

    def _on_iteration(live_state) -> None:
        if (
            cell.checkpoint_every > 0
            and live_state.iteration % cell.checkpoint_every == 0
            and live_state.iteration < cell.config.iterations
        ):
            save_checkpoint(
                shard_dir,
                live_state,
                extra={"run_id": cell.run_id, "shard": index, "target": cell.target},
            )
            store.write_shard_status(
                cell.run_id,
                index,
                state="running",
                pid=os.getpid(),
                iteration=live_state.iteration,
                iterations=cell.config.iterations,
                target=cell.target,
                backend=cell.backend,
                seed=cell.seed,
                resumed_from=resumed_from,
                checkpoint_iteration=live_state.iteration,
            )

    result = sampler.run(seed=cell.seed, state=state, on_iteration=_on_iteration)
    decoys = result.distinct_non_dominated(trajectory=index)

    summary = {
        "run_id": cell.run_id,
        "shard": index,
        "target": cell.target,
        "config_name": cell.config_name,
        "seed_index": cell.seed_index,
        "backend": result.backend_name,
        "backend_kind": cell.backend,
        "seed": cell.seed,
        "iterations": cell.config.iterations,
        "resumed_from": resumed_from,
        # For resumed cells this covers only the final segment (the time
        # before the interruption died with the interrupted process).
        "wall_seconds": result.wall_seconds,
        "best_rmsd": result.best_rmsd,
        "best_front_rmsd": result.best_non_dominated_rmsd,
        "n_non_dominated": result.n_non_dominated(),
        "final_acceptance": (
            result.acceptance_history[-1] if result.acceptance_history else None
        ),
    }
    store.save_shard_result(
        cell.run_id,
        index,
        decoys,
        summary,
        host_ledger=result.host_ledger,
        kernel_ledger=result.kernel_ledger,
    )
    store.write_shard_status(
        cell.run_id,
        index,
        state="done",
        pid=os.getpid(),
        iteration=cell.config.iterations,
        iterations=cell.config.iterations,
        target=cell.target,
        backend=cell.backend,
        seed=cell.seed,
        resumed_from=resumed_from,
        n_decoys=len(decoys),
    )
    summary["n_decoys"] = len(decoys)
    return summary


def run_shard(store: RunStore, spec: RunSpec, index: int) -> Dict[str, Any]:
    """Execute (or resume) one shard of a single-target run (legacy alias)."""
    return run_cell(store, spec.cell(index))


def _cell_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Picklable worker entry point: run one cell, never raise.

    Exceptions are folded into an ``{"error": ...}`` summary (and the
    cell's status document) so one bad cell cannot poison the pool.
    """
    store = RunStore(payload["store_root"])
    cell = CellSpec.from_dict(payload["cell"])
    try:
        return run_cell(store, cell)
    except Exception as exc:  # noqa: BLE001 - reported via the summary
        detail = traceback.format_exc(limit=20)
        try:
            # The attempt counter is what lets the daemon park cells that
            # fail deterministically instead of retrying them forever.
            attempts = int(
                store.read_shard_status(cell.run_id, cell.index).get("attempts", 0)
            )
            store.write_shard_status(
                cell.run_id,
                cell.index,
                state="failed",
                error=str(exc),
                detail=detail,
                attempts=attempts + 1,
            )
        except OSError:
            pass
        return {
            "run_id": cell.run_id,
            "shard": cell.index,
            "target": cell.target,
            "error": f"{type(exc).__name__}: {exc}",
            "detail": detail,
        }


# ---------------------------------------------------------------------------
# The executor (runs in the submitting process)
# ---------------------------------------------------------------------------


class ShardExecutor:
    """Fans the cells of a run or campaign out across worker processes."""

    def __init__(
        self,
        store: RunStore,
        workers: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.store = store
        self.workers = workers
        self.progress = progress
        self._logger = get_logger("runtime.executor")

    def _emit(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)
        else:
            self._logger.info("%s", line)

    def execute(self, spec, indices: Optional[Sequence[int]] = None) -> List[Dict[str, Any]]:
        """Run the (remaining) cells of ``spec``; returns cell summaries.

        ``spec`` is a :class:`RunSpec` or a :class:`Campaign`.  Cells with
        results on disk are skipped (their stored summaries are returned),
        which is what makes ``execute`` double as *resume*: a killed run
        re-executes only its unfinished cells, each continuing from its
        latest checkpoint.  Raises :class:`ShardFailure` if any cell errors.
        """
        if indices is None:
            indices = range(spec.n_trajectories)
        workers = self.workers if self.workers is not None else spec.workers
        pending = []
        done = []
        for index in indices:
            if self.store.has_shard_result(spec.run_id, index):
                done.append(int(index))
                self._emit(f"{spec.run_id}/{shard_name(index)}: already complete")
            else:
                pending.append(
                    {
                        "store_root": str(self.store.root),
                        "cell": spec.cell(int(index)).to_dict(),
                    }
                )
        self._emit(
            f"{spec.run_id}: {len(pending)} shard(s) to run on "
            f"{min(workers, max(len(pending), 1))} worker(s)"
        )

        def _report(_pos: int, summary: Dict[str, Any]) -> None:
            shard = shard_name(summary.get("shard", -1))
            if "error" in summary:
                self._emit(f"{spec.run_id}/{shard}: FAILED {summary['error']}")
            else:
                resumed = summary.get("resumed_from")
                suffix = f" (resumed from iter {resumed})" if resumed else ""
                self._emit(
                    f"{spec.run_id}/{shard}: done in "
                    f"{summary.get('wall_seconds', 0.0):.2f}s, "
                    f"{summary.get('n_decoys', 0)} decoys{suffix}"
                )

        fresh = parallel_map(_cell_task, pending, workers, on_result=_report)
        failures = [s for s in fresh if "error" in s]
        if failures:
            raise ShardFailure(
                f"{len(failures)} shard(s) of run {spec.run_id!r} failed: "
                + "; ".join(
                    f"shard {s['shard']}: {s['error']}" for s in failures
                )
            )
        summaries = {s["shard"]: s for s in fresh}
        for index in done:
            summaries[index] = self.store.load_shard_summary(spec.run_id, index)
        return [summaries[i] for i in sorted(summaries)]

    def merge(self, run_id: str, distinct_only: bool = False) -> DecoySet:
        """Merge every completed shard's decoys; persists and returns the set.

        The default is the plain union of the per-shard sets (shard order);
        ``distinct_only`` re-applies the cross-shard distinctness rule.
        Only meaningful for single-target batches — decoys of different
        targets live in different torsion spaces, so multi-target campaigns
        aggregate per target through
        :meth:`repro.api.results.CampaignResult` instead.
        """
        manifest = self.store.load_manifest(run_id)
        spec = manifest.spec
        if isinstance(spec, Campaign) and len(spec.targets) > 1:
            raise ShardFailure(
                f"run {run_id!r} is a multi-target campaign; merge per target "
                "via the repro.api campaign results instead"
            )
        shard_sets = []
        shard_ledgers = []
        for index in range(spec.n_trajectories):
            if not self.store.has_shard_result(run_id, index):
                raise ShardFailure(
                    f"cannot merge run {run_id!r}: shard {index} has no result "
                    "(resume the run first)"
                )
            _summary, decoys, ledgers = self.store.load_shard_result(run_id, index)
            shard_sets.append(decoys)
            shard_ledgers.append(ledgers)
        merged = merge_decoy_sets(shard_sets, distinct_only=distinct_only)
        kernel = merge_timing_ledgers(l["kernel"] for l in shard_ledgers)
        host = merge_timing_ledgers(l["host"] for l in shard_ledgers)
        self.store.save_merged(
            run_id,
            merged,
            {
                "run_id": run_id,
                "distinct_only": distinct_only,
                "n_shards": spec.n_trajectories,
                "per_shard_decoys": [len(s) for s in shard_sets],
                "best_rmsd": merged.best_rmsd(),
                "kernel_ledger_seconds": kernel.total(),
                "host_ledger_seconds": host.total(),
            },
        )
        self._emit(
            f"{run_id}: merged {sum(len(s) for s in shard_sets)} shard decoys "
            f"into {len(merged)} ({'distinct' if distinct_only else 'union'})"
        )
        return merged

"""Process-pool shard executor.

The executor fans the cells of a :class:`~repro.runtime.spec.RunSpec` or
:class:`~repro.runtime.spec.Campaign` out across worker processes.  Each
worker is self-sufficient: it rebuilds the target from its registry name,
constructs its own backend through :func:`repro.backends.make_backend`, and
talks to the run store only through the file system — the only data
crossing the process boundary are small picklable dicts (cell payloads in,
cell summaries out), so the executor scales to decoy sets far larger than
a pipe buffer.  Workers keep a process-level cache of assembled scoring
stacks keyed by ``(target, block size)`` (targets and knowledge bases are
already cached underneath), so a worker that executes many cells — or
drains many campaigns in one daemon batch — pays the table-building cost
once per target rather than once per trajectory.  A
:class:`PersistentPool` keeps the same worker processes alive across
*calls*, which is how the daemon extends those caches from one drain pass
to its whole lifetime.

Execution of one cell:

1. if the cell already has a result on disk, return its summary (idempotent
   re-submits and resumes);
2. if a checkpoint exists, restore the :class:`SamplerState` from it —
   resumed trajectories are bit-identical to uninterrupted ones;
3. run the sampler, checkpointing every ``checkpoint_every`` iterations and
   updating the cell's status document (the live progress ``repro-batch
   status`` / ``repro-campaign status`` read);
4. for cells of a migrating archipelago (see :mod:`repro.islands`), at
   every migration boundary the cell emits its emigrant packet and absorbs
   its neighbours'; if a neighbour has not emitted yet, the cell
   checkpoints and returns a *waiting* summary — it stays pending in the
   store, and a later pass resumes it at the boundary.  Nothing about this
   is new IPC: packets, events and checkpoints all ride the run store;
5. harvest the structurally distinct non-dominated decoys and write the
   cell result (appending a ``cell-done`` event to the store journal).

:func:`parallel_map` is the shared fan-out primitive; the experiment runner
and the campaign daemon reuse it.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.analysis.aggregation import merge_decoy_sets, merge_timing_ledgers
from repro.islands.broker import MigrationBroker, WaitingForPackets
from repro.moscem.decoys import DecoySet
from repro.obs.trace import Tracer, ledger_snapshot
from repro.runtime.checkpoint import (
    has_checkpoint,
    load_checkpoint,
    load_checkpoint_extra,
    save_checkpoint,
)
from repro.runtime.spec import Campaign, CellSpec, RunSpec, shard_name
from repro.runtime.store import RunStore
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # heavy sampler imports stay lazy in worker processes
    from repro.moscem.sampler import MOSCEMSampler, SamplerState

__all__ = [
    "PersistentPool",
    "ShardExecutor",
    "ShardFailure",
    "parallel_map",
    "run_cell",
    "run_shard",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Callback receiving one progress line per event.
ProgressFn = Callable[[str], None]


class ShardFailure(RuntimeError):
    """One or more shards of a run failed."""


class _MigrationWait(Exception):
    """A cell reached a migration boundary whose source packets are missing.

    Internal control flow of :func:`run_cell`: raised out of the sampler's
    ``on_iteration`` hook after the cell has checkpointed at the boundary,
    and converted into a ``waiting`` summary (the cell keeps no process
    state — a later pass resumes it from the boundary checkpoint).
    """

    def __init__(self, epoch: int, missing: Sequence[int], iteration: int) -> None:
        self.epoch = int(epoch)
        self.missing = tuple(int(m) for m in missing)
        self.iteration = int(iteration)
        super().__init__(f"waiting for epoch {epoch} packets from {missing}")


class PersistentPool:
    """A process pool surviving across :func:`parallel_map` calls.

    Passing one of these as ``pool=`` makes consecutive maps reuse the
    same worker processes, so the per-worker caches (targets, knowledge
    bases, assembled scoring stacks) accumulate across calls — the daemon
    holds one for its whole lifetime instead of rebuilding the pool every
    drain pass.  The underlying executor is created lazily and rebuilt on
    the next use after :meth:`reset` (e.g. when a worker crash broke it).
    """

    def __init__(self, workers: int) -> None:
        if workers <= 1:
            raise ValueError("a persistent pool needs workers > 1")
        self.workers = int(workers)
        self._executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> ProcessPoolExecutor:
        """The live pool, created on first use."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def reset(self) -> None:
        """Discard the pool (broken or not); the next use builds a fresh one."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight work."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _submit_and_wait(
    executor: ProcessPoolExecutor,
    fn: Callable[[_T], _R],
    items: List[_T],
    results: List[Any],
    on_result: Optional[Callable[[int, _R], None]],
    on_tick: Optional[Callable[[], None]],
    tick_seconds: float,
) -> None:
    futures = {executor.submit(fn, item): index for index, item in enumerate(items)}
    pending = set(futures)
    timeout = tick_seconds if on_tick is not None else None
    while pending:
        done, pending = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
        if on_tick is not None:
            on_tick()
        for future in done:
            index = futures[future]
            results[index] = future.result()
            if on_result is not None:
                on_result(index, results[index])


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: int,
    on_result: Optional[Callable[[int, _R], None]] = None,
    pool: Optional[PersistentPool] = None,
    on_tick: Optional[Callable[[], None]] = None,
    tick_seconds: float = 5.0,
) -> List[_R]:
    """Map ``fn`` over ``items`` across worker processes, in input order.

    ``fn`` and every item must be picklable.  With ``workers <= 1`` (or a
    single item) the map runs inline in the calling process, which keeps
    tracebacks direct and avoids pool start-up for trivial batches.
    ``on_result`` is called as ``(index, result)`` the moment an item
    finishes — out of order — which is what streams per-shard progress.
    ``pool`` supplies a :class:`PersistentPool` to reuse across calls; by
    default a throwaway pool is built and torn down per call.

    ``on_tick`` is invoked from the submitting process at least every
    ``tick_seconds`` while items are in flight (and between items on the
    inline path) — the scale-out daemon hangs its lease-heartbeat renewal
    here, so long-running cells keep their claims alive without threads.
    The callback must be cheap and must not raise.
    """
    items = list(items)
    results: List[Any] = [None] * len(items)
    if not items:
        return results
    if workers <= 1 or len(items) == 1:
        for index, item in enumerate(items):
            if on_tick is not None:
                on_tick()
            results[index] = fn(item)
            if on_result is not None:
                on_result(index, results[index])
        return results

    if pool is not None:
        try:
            _submit_and_wait(
                pool.executor(), fn, items, results, on_result, on_tick, tick_seconds
            )
        except BrokenProcessPool:
            # A dead worker poisons the whole executor; drop it so the
            # caller's next map builds a healthy pool.
            pool.reset()
            raise
        return results

    max_workers = min(workers, len(items))
    with ProcessPoolExecutor(max_workers=max_workers) as executor:
        _submit_and_wait(
            executor, fn, items, results, on_result, on_tick, tick_seconds
        )
    return results


# ---------------------------------------------------------------------------
# Shard execution (runs inside worker processes)
# ---------------------------------------------------------------------------


#: Per-worker cache of assembled scoring stacks keyed by (target, block size).
#: Scoring functions are bound to a target and hold only precomputed lookup
#: tables, so sharing one stack across the cells a worker executes — within
#: a campaign and across campaigns drained in one batch — is safe and skips
#: the repeated knowledge-table assembly.
_MULTI_SCORE_CACHE: Dict[Any, Any] = {}


def _cached_multi_score(target_name: str, block_size: int) -> Any:
    from repro.loops.targets import get_target
    from repro.scoring import default_multi_score

    key = (target_name, int(block_size))
    if key not in _MULTI_SCORE_CACHE:
        _MULTI_SCORE_CACHE[key] = default_multi_score(
            get_target(target_name), block_size=block_size
        )
    return _MULTI_SCORE_CACHE[key]


def _build_sampler(cell: CellSpec) -> "MOSCEMSampler":
    """Construct the target, backend and sampler for one cell.

    The target and scoring stack come from the per-worker caches; the
    backend is always fresh because it accumulates per-run kernel ledgers.
    """
    from repro.backends import make_backend
    from repro.loops.targets import get_target
    from repro.moscem.sampler import MOSCEMSampler

    target = get_target(cell.target)
    config = cell.config
    multi_score = _cached_multi_score(cell.target, config.kernel_block_size)
    backend = make_backend(cell.backend, target, multi_score, config)
    return MOSCEMSampler(
        target, config=config, multi_score=multi_score, backend=backend
    )


def run_cell(
    store: RunStore, cell: CellSpec, trace: bool = False
) -> Dict[str, Any]:
    """Execute (or resume) one cell; returns its summary.

    Runs inside a worker process, but is equally callable inline — the
    executor with ``workers=1`` and the tests use the same code path.
    Cells of a migrating archipelago may return a ``waiting`` summary
    instead of completing: the cell checkpointed at a migration boundary
    whose source packets are not on disk yet, and a later pass resumes it.

    With ``trace`` on, the cell records a span tree — one *epoch* span per
    checkpoint segment, each absorbing the kernel ledger's delta as leaf
    spans — persisted as the shard's ``trace.json``.  Tracing is pure
    telemetry on the status channel: nothing it records feeds the result,
    the journal or the checkpoints, so traced and untraced drains produce
    byte-identical replay surfaces.
    """
    index = cell.index
    shard_dir = store.shard_dir(cell.run_id, index)

    if store.has_shard_result(cell.run_id, index):
        return store.load_shard_summary(cell.run_id, index)

    sampler = _build_sampler(cell)
    tracer: Optional[Tracer] = Tracer() if trace else None
    epoch_state: Dict[str, Any] = {"index": 0, "kernel": {}}

    def _epoch_open(iteration: int) -> None:
        """Start the next epoch span, snapshotting the kernel ledger."""
        if tracer is None:
            return
        epoch_state["kernel"] = ledger_snapshot(sampler.backend.ledger)
        tracer.begin(
            f"epoch {epoch_state['index']}", "epoch", start_iteration=iteration
        )

    def _epoch_close() -> None:
        """Close the open epoch, absorbing the kernel ledger's delta."""
        if tracer is None:
            return
        tracer.absorb_ledger(
            sampler.backend.ledger, category="kernel", since=epoch_state["kernel"]
        )
        tracer.end()
        epoch_state["index"] += 1

    plan = cell.migration
    migrating = (
        plan is not None
        and plan.period(cell.checkpoint_every) > 0
        and plan.n_epochs(cell.checkpoint_every, cell.config.iterations) > 0
        and bool(plan.source_shards())
    )
    broker = MigrationBroker(store, cell.run_id) if migrating else None
    period = plan.period(cell.checkpoint_every) if migrating else 0
    n_epochs = (
        plan.n_epochs(cell.checkpoint_every, cell.config.iterations)
        if migrating
        else 0
    )

    state = None
    resumed_from = None
    epochs_absorbed = 0
    if has_checkpoint(shard_dir):
        state = load_checkpoint(shard_dir, sampler)
        resumed_from = state.iteration
        if migrating:
            epochs_absorbed = int(
                load_checkpoint_extra(shard_dir).get("migration_epochs", 0)
            )

    # Status writes replace the whole document, so the failure-attempt
    # counter must be carried through every rewrite — otherwise a cell
    # that fails *after* this first write would reset its count each try
    # and the daemon's max-attempts parking could never trigger.
    attempts = int(
        store.read_shard_status(cell.run_id, index).get("attempts", 0)
    )

    def _status_fields(**fields: Any) -> Dict[str, Any]:
        base = {
            "pid": os.getpid(),
            "iterations": cell.config.iterations,
            "target": cell.target,
            "backend": cell.backend,
            "seed": cell.seed,
            "resumed_from": resumed_from,
            "attempts": attempts,
        }
        if migrating:
            base["migration_epochs"] = epochs_absorbed
        base.update(fields)
        return base

    def _checkpoint_extra() -> Dict[str, Any]:
        extra = {"run_id": cell.run_id, "shard": index, "target": cell.target}
        if migrating:
            extra["migration_epochs"] = epochs_absorbed
        return extra

    store.write_shard_status(
        cell.run_id,
        index,
        state="running",
        **_status_fields(iteration=0 if state is None else state.iteration),
    )

    def _maybe_migrate(live_state: "SamplerState") -> bool:
        """Run the migration boundary at the live iteration, if one is due.

        Returns True when a (post-absorption) checkpoint was written, so
        the caller skips the plain periodic checkpoint for this iteration.
        Raises :class:`_MigrationWait` after checkpointing when source
        packets are missing.
        """
        nonlocal epochs_absorbed
        if not migrating or epochs_absorbed >= n_epochs:
            return False
        boundary = (epochs_absorbed + 1) * period
        if live_state.iteration < boundary:
            return False
        if live_state.iteration > boundary:
            raise RuntimeError(
                f"{cell.run_id}/{cell.name}: iteration {live_state.iteration} "
                f"passed migration boundary {boundary} without absorbing "
                "(corrupt checkpoint metadata?)"
            )
        epoch = epochs_absorbed + 1
        try:
            broker.migrate(live_state, plan, epoch)
        except WaitingForPackets as blocked:
            # Park the cell: checkpoint the pre-absorption state at the
            # boundary (the packet it emitted is already on disk) and
            # bubble a wait out of the sampler loop.
            save_checkpoint(shard_dir, live_state, extra=_checkpoint_extra())
            store.write_shard_status(
                cell.run_id,
                index,
                state="waiting",
                **_status_fields(
                    iteration=live_state.iteration,
                    migration_epoch=epoch,
                    waiting_on=list(blocked.missing),
                ),
            )
            raise _MigrationWait(epoch, blocked.missing, live_state.iteration)
        epochs_absorbed = epoch
        save_checkpoint(shard_dir, live_state, extra=_checkpoint_extra())
        store.write_shard_status(
            cell.run_id,
            index,
            state="running",
            **_status_fields(
                iteration=live_state.iteration,
                checkpoint_iteration=live_state.iteration,
            ),
        )
        return True

    def _on_iteration(live_state: "SamplerState") -> None:
        checkpointed = _maybe_migrate(live_state)
        if (
            not checkpointed
            and cell.checkpoint_every > 0
            and live_state.iteration % cell.checkpoint_every == 0
            and live_state.iteration < cell.config.iterations
        ):
            save_checkpoint(shard_dir, live_state, extra=_checkpoint_extra())
            store.write_shard_status(
                cell.run_id,
                index,
                state="running",
                **_status_fields(
                    iteration=live_state.iteration,
                    checkpoint_iteration=live_state.iteration,
                ),
            )
            checkpointed = True
        if checkpointed and tracer is not None:
            # Checkpoint boundaries delimit the trace's epoch spans.
            _epoch_close()
            _epoch_open(live_state.iteration)

    if tracer is not None:
        tracer.begin(
            f"cell {cell.name}",
            "cell",
            target=cell.target,
            backend=cell.backend,
            seed=cell.seed,
            run_id=cell.run_id,
            resumed_from=resumed_from,
        )
        _epoch_open(0 if state is None else state.iteration)

    try:
        if state is not None:
            # A cell parked at a boundary resumes *on* it: absorb (or wait
            # again) before stepping further.
            _maybe_migrate(state)
        result = sampler.run(seed=cell.seed, state=state, on_iteration=_on_iteration)
    except _MigrationWait as blocked:
        return {
            "run_id": cell.run_id,
            "shard": index,
            "target": cell.target,
            "waiting": True,
            "iteration": blocked.iteration,
            "migration_epoch": blocked.epoch,
            "waiting_on": list(blocked.missing),
        }
    decoys = result.distinct_non_dominated(trajectory=index)

    summary = {
        "run_id": cell.run_id,
        "shard": index,
        "target": cell.target,
        "config_name": cell.config_name,
        "seed_index": cell.seed_index,
        "backend": result.backend_name,
        "backend_kind": cell.backend,
        "seed": cell.seed,
        "iterations": cell.config.iterations,
        "resumed_from": resumed_from,
        "migration_epochs": epochs_absorbed,
        # For resumed cells this covers only the final segment (the time
        # before the interruption died with the interrupted process).
        "wall_seconds": result.wall_seconds,
        "best_rmsd": result.best_rmsd,
        "best_front_rmsd": result.best_non_dominated_rmsd,
        "n_non_dominated": result.n_non_dominated(),
        "final_acceptance": (
            result.acceptance_history[-1] if result.acceptance_history else None
        ),
    }
    store.save_shard_result(
        cell.run_id,
        index,
        decoys,
        summary,
        host_ledger=result.host_ledger,
        kernel_ledger=result.kernel_ledger,
    )
    if tracer is not None:
        _epoch_close()
        root = tracer.current
        if root is not None:
            # Lay the host-side sections after the last epoch so same-level
            # spans never overlap in the Chrome-trace rendering.
            host_start = max((c.end for c in root.children), default=root.start)
            tracer.absorb_ledger(
                result.host_ledger, category="host", start=host_start
            )
        tracer.end()
        store.save_shard_trace(cell.run_id, index, tracer.to_dict())
    # Wall-clock stamps live in the status document — the mutable,
    # non-replayed metadata channel (it already carries the pid) — never
    # in journal payloads, which kill-and-redrain replays must reproduce
    # byte-identically (enforced by lint rule REP004).
    store.write_shard_status(
        cell.run_id,
        index,
        state="done",
        **_status_fields(
            iteration=cell.config.iterations,
            n_decoys=len(decoys),
            finished_at=time.time(),
        ),
    )
    store.append_journal(
        cell.run_id,
        {
            "type": "cell-done",
            "shard": index,
            "target": cell.target,
            "n_decoys": len(decoys),
        },
    )
    summary["n_decoys"] = len(decoys)
    return summary


def run_shard(store: RunStore, spec: RunSpec, index: int) -> Dict[str, Any]:
    """Execute (or resume) one shard of a single-target run (legacy alias)."""
    return run_cell(store, spec.cell(index))


def _cell_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Picklable worker entry point: run one cell, never raise.

    Exceptions are folded into an ``{"error": ...}`` summary (and the
    cell's status document) so one bad cell cannot poison the pool.
    """
    store = RunStore(payload["store_root"])
    cell = CellSpec.from_dict(payload["cell"])
    try:
        return run_cell(store, cell, trace=bool(payload.get("trace", False)))
    except Exception as exc:  # noqa: BLE001 - reported via the summary
        detail = traceback.format_exc(limit=20)
        try:
            # The attempt counter is what lets the daemon park cells that
            # fail deterministically instead of retrying them forever.
            attempts = int(
                store.read_shard_status(cell.run_id, cell.index).get("attempts", 0)
            )
            store.write_shard_status(
                cell.run_id,
                cell.index,
                state="failed",
                error=str(exc),
                detail=detail,
                attempts=attempts + 1,
                failed_at=time.time(),
            )
            store.append_journal(
                cell.run_id,
                {
                    "type": "cell-failed",
                    "shard": cell.index,
                    "target": cell.target,
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
        except OSError:
            pass
        return {
            "run_id": cell.run_id,
            "shard": cell.index,
            "target": cell.target,
            "error": f"{type(exc).__name__}: {exc}",
            "detail": detail,
        }


# ---------------------------------------------------------------------------
# The executor (runs in the submitting process)
# ---------------------------------------------------------------------------


class ShardExecutor:
    """Fans the cells of a run or campaign out across worker processes."""

    def __init__(
        self,
        store: RunStore,
        workers: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        trace: bool = False,
    ) -> None:
        self.store = store
        self.workers = workers
        self.progress = progress
        self.trace = bool(trace)
        self._logger = get_logger("runtime.executor")

    def _emit(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)
        else:
            self._logger.info("%s", line)

    def execute(
        self,
        spec: Union[RunSpec, Campaign],
        indices: Optional[Sequence[int]] = None,
    ) -> List[Dict[str, Any]]:
        """Run the (remaining) cells of ``spec``; returns cell summaries.

        ``spec`` is a :class:`RunSpec` or a :class:`Campaign`.  Cells with
        results on disk are skipped (their stored summaries are returned),
        which is what makes ``execute`` double as *resume*: a killed run
        re-executes only its unfinished cells, each continuing from its
        latest checkpoint.  Migrating campaigns are driven in passes: a
        cell parked at a migration boundary rejoins the next pass once its
        neighbours have emitted — the loop ends when every cell completed
        or no pass makes progress (which, with all islands schedulable,
        cannot happen; it guards subsetted ``indices``).  Raises
        :class:`ShardFailure` if any cell errors.
        """
        if indices is None:
            indices = range(spec.n_trajectories)
        workers = self.workers if self.workers is not None else spec.workers
        summaries: Dict[int, Dict[str, Any]] = {}
        pending: List[int] = []
        for index in indices:
            index = int(index)
            if self.store.has_shard_result(spec.run_id, index):
                summaries[index] = self.store.load_shard_summary(spec.run_id, index)
                self._emit(f"{spec.run_id}/{shard_name(index)}: already complete")
            else:
                pending.append(index)
        self._emit(
            f"{spec.run_id}: {len(pending)} shard(s) to run on "
            f"{min(workers, max(len(pending), 1))} worker(s)"
        )

        def _report(_pos: int, summary: Dict[str, Any]) -> None:
            shard = shard_name(summary.get("shard", -1))
            if "error" in summary:
                self._emit(f"{spec.run_id}/{shard}: FAILED {summary['error']}")
            elif summary.get("waiting"):
                self._emit(
                    f"{spec.run_id}/{shard}: waiting at migration epoch "
                    f"{summary.get('migration_epoch')} for packet(s) from "
                    f"shard(s) {summary.get('waiting_on')}"
                )
            else:
                resumed = summary.get("resumed_from")
                suffix = f" (resumed from iter {resumed})" if resumed else ""
                self._emit(
                    f"{spec.run_id}/{shard}: done in "
                    f"{summary.get('wall_seconds', 0.0):.2f}s, "
                    f"{summary.get('n_decoys', 0)} decoys{suffix}"
                )

        previous_signature = None
        while pending:
            payloads = [
                {
                    "store_root": str(self.store.root),
                    "cell": spec.cell(index).to_dict(),
                    "trace": self.trace,
                }
                for index in pending
            ]
            fresh = parallel_map(_cell_task, payloads, workers, on_result=_report)
            failures = [s for s in fresh if "error" in s]
            if failures:
                raise ShardFailure(
                    f"{len(failures)} shard(s) of run {spec.run_id!r} failed: "
                    + "; ".join(
                        f"shard {s['shard']}: {s['error']}" for s in failures
                    )
                )
            waiting = [s for s in fresh if s.get("waiting")]
            for summary in fresh:
                if not summary.get("waiting"):
                    summaries[int(summary["shard"])] = summary
            if not waiting:
                break
            signature = tuple(
                sorted(
                    (
                        int(s["shard"]),
                        int(s.get("iteration", -1)),
                        int(s.get("migration_epoch", -1)),
                    )
                    for s in waiting
                )
            )
            progressed = (
                len(waiting) < len(pending) or signature != previous_signature
            )
            if not progressed:
                blocked = ", ".join(
                    f"shard {s['shard']} on {s.get('waiting_on')}" for s in waiting
                )
                raise ShardFailure(
                    f"run {spec.run_id!r} cannot make migration progress "
                    f"({blocked}); are all islands of each group scheduled?"
                )
            previous_signature = signature
            pending = sorted(int(s["shard"]) for s in waiting)
        return [summaries[i] for i in sorted(summaries)]

    def merge(self, run_id: str, distinct_only: bool = False) -> DecoySet:
        """Merge every completed shard's decoys; persists and returns the set.

        The default is the plain union of the per-shard sets (shard order);
        ``distinct_only`` re-applies the cross-shard distinctness rule.
        Only meaningful for single-target batches — decoys of different
        targets live in different torsion spaces, so multi-target campaigns
        aggregate per target through
        :meth:`repro.api.results.CampaignResult` instead.
        """
        manifest = self.store.load_manifest(run_id)
        spec = manifest.spec
        if isinstance(spec, Campaign) and len(spec.targets) > 1:
            raise ShardFailure(
                f"run {run_id!r} is a multi-target campaign; merge per target "
                "via the repro.api campaign results instead"
            )
        shard_sets = []
        shard_ledgers = []
        for index in range(spec.n_trajectories):
            if not self.store.has_shard_result(run_id, index):
                raise ShardFailure(
                    f"cannot merge run {run_id!r}: shard {index} has no result "
                    "(resume the run first)"
                )
            _summary, decoys, ledgers = self.store.load_shard_result(run_id, index)
            shard_sets.append(decoys)
            shard_ledgers.append(ledgers)
        merged = merge_decoy_sets(shard_sets, distinct_only=distinct_only)
        kernel = merge_timing_ledgers(l["kernel"] for l in shard_ledgers)
        host = merge_timing_ledgers(l["host"] for l in shard_ledgers)
        self.store.save_merged(
            run_id,
            merged,
            {
                "run_id": run_id,
                "distinct_only": distinct_only,
                "n_shards": spec.n_trajectories,
                "per_shard_decoys": [len(s) for s in shard_sets],
                "best_rmsd": merged.best_rmsd(),
                "kernel_ledger_seconds": kernel.total(),
                "host_ledger_seconds": host.total(),
            },
        )
        self._emit(
            f"{run_id}: merged {sum(len(s) for s in shard_sets)} shard decoys "
            f"into {len(merged)} ({'distinct' if distinct_only else 'union'})"
        )
        return merged

"""Sharded multi-trajectory orchestration with checkpoint/resume.

The paper's headline numbers come from many independent MOSCEM trajectories
per loop target; this package is the layer that treats each trajectory as a
schedulable, restartable unit:

* :mod:`~repro.runtime.spec` — :class:`RunSpec` / :class:`RunManifest`
  describe a batch of trajectories (target x config x seed x backend) with
  deterministic per-shard seed derivation;
* :mod:`~repro.runtime.store` — :class:`RunStore`, the persistent on-disk
  store of manifests, checkpoints, per-shard decoy sets and timing ledgers;
* :mod:`~repro.runtime.checkpoint` — serialisation of the sampler's
  :class:`~repro.moscem.sampler.SamplerState` (``npz`` arrays + JSON
  manifest with a content hash), so an interrupted shard resumes
  bit-identically to an uninterrupted one;
* :mod:`~repro.runtime.executor` — :class:`ShardExecutor`, the process-pool
  fan-out that runs shards across workers, streams per-shard progress, and
  merges decoy sets and timing ledgers on completion.

The ``repro-batch`` command-line entry point (submit / status / resume /
merge) is the user-facing surface of this package; every future scaling
layer (async serving, caching, island-model migration) plugs in above the
same executor.
"""

from repro.runtime.checkpoint import (
    CheckpointError,
    has_checkpoint,
    load_checkpoint,
    load_checkpoint_extra,
    save_checkpoint,
)
from repro.runtime.executor import (
    PersistentPool,
    ShardExecutor,
    ShardFailure,
    parallel_map,
    run_cell,
    run_shard,
)
from repro.runtime.spec import (
    Campaign,
    CampaignManifest,
    CellSpec,
    RunManifest,
    RunSpec,
    ShardSpec,
    campaign_cell_seed,
)
from repro.runtime.store import RunStore, RunStoreError

__all__ = [
    "CheckpointError",
    "has_checkpoint",
    "load_checkpoint",
    "load_checkpoint_extra",
    "save_checkpoint",
    "PersistentPool",
    "ShardExecutor",
    "ShardFailure",
    "parallel_map",
    "run_cell",
    "run_shard",
    "Campaign",
    "CampaignManifest",
    "CellSpec",
    "RunManifest",
    "RunSpec",
    "ShardSpec",
    "campaign_cell_seed",
    "RunStore",
    "RunStoreError",
]

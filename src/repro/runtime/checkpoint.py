"""Checkpoint serialisation of :class:`~repro.moscem.sampler.SamplerState`.

A checkpoint is two sibling files:

* ``checkpoint.npz`` — the population arrays (torsions, coordinates,
  closure atoms, scores, fitness) and the per-iteration histories;
* ``checkpoint.json`` — the scalar state (iteration counter, temperature,
  master seed), the bit-generator states of the mutation and Metropolis
  streams, a content hash of the ``npz``, and a format version.

The JSON is written *after* the ``npz`` and both writes go through a
temp-file + atomic rename, so a crash mid-save leaves either the previous
complete checkpoint or a rejected partial one — never a silently wrong
state.  :func:`load_checkpoint` verifies the hash before touching any
array, so truncated or bit-flipped checkpoints raise
:class:`CheckpointError` instead of resuming from garbage.

Resuming restores the exact arrays and RNG streams, so a trajectory
checkpointed at iteration *k* and resumed is bit-identical to one that was
never interrupted (see ``tests/property/test_checkpoint_resume.py``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.io import write_json_atomic, write_npz_atomic
from repro.moscem.metropolis import TemperatureSchedule
from repro.moscem.population import Population
from repro.moscem.sampler import MOSCEMSampler, SamplerState
from repro.utils.rng import RandomStreams

__all__ = [
    "CheckpointError",
    "CHECKPOINT_FORMAT_VERSION",
    "checkpoint_paths",
    "has_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_extra",
]

#: Version stamp of the checkpoint layout.
CHECKPOINT_FORMAT_VERSION: int = 1

_NPZ_NAME = "checkpoint.npz"
_JSON_NAME = "checkpoint.json"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupted, or inconsistent with its run."""


def checkpoint_paths(directory: Union[str, Path]) -> Dict[str, Path]:
    """The ``npz``/``json`` paths of the checkpoint in ``directory``."""
    directory = Path(directory)
    return {"npz": directory / _NPZ_NAME, "json": directory / _JSON_NAME}


def has_checkpoint(directory: Union[str, Path]) -> bool:
    """Whether both checkpoint files exist in ``directory``."""
    paths = checkpoint_paths(directory)
    return paths["npz"].is_file() and paths["json"].is_file()


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def save_checkpoint(
    directory: Union[str, Path],
    state: SamplerState,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Persist ``state`` into ``directory``; returns the JSON path.

    ``extra`` entries are stored under the ``"extra"`` key of the JSON
    (e.g. the shard index or target name, for human inspection).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = checkpoint_paths(directory)
    population = state.population

    arrays = {
        "torsions": population.torsions,
        "coords": population.coords,
        "closure": population.closure,
        "scores": population.scores,
        "acceptance_history": np.asarray(state.acceptance_history, dtype=np.float64),
        "temperature_history": np.asarray(state.temperature_history, dtype=np.float64),
    }
    if population.fitness is not None:
        arrays["fitness"] = population.fitness

    # The atomic npz writer serialises into memory and returns exactly the
    # bytes it wrote, so the hash needs no read-back of a large npz file.
    blob = write_npz_atomic(paths["npz"], arrays)
    payload = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "iteration": int(state.iteration),
        "temperature": float(state.schedule.temperature),
        "seed": None if state.seed is None else int(state.seed),
        "rng": state.rng_states(),
        "npz_sha256": hashlib.sha256(blob).hexdigest(),
        "extra": dict(extra or {}),
    }
    write_json_atomic(paths["json"], payload)
    return paths["json"]


def _load_payload(paths: Dict[str, Path]) -> Dict[str, Any]:
    if not paths["json"].is_file():
        raise CheckpointError(f"no checkpoint manifest at {paths['json']}")
    if not paths["npz"].is_file():
        raise CheckpointError(f"checkpoint arrays missing at {paths['npz']}")
    try:
        payload = json.loads(paths["json"].read_text())
    except (ValueError, OSError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint manifest {paths['json']}: {exc}"
        ) from exc
    version = int(payload.get("format_version", -1))
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format_version {version}; "
            f"expected {CHECKPOINT_FORMAT_VERSION}"
        )
    digest = _sha256(paths["npz"])
    if digest != payload.get("npz_sha256"):
        raise CheckpointError(
            f"checkpoint arrays {paths['npz']} do not match their recorded "
            "hash (partial write or corruption) — refusing to resume"
        )
    return payload


def load_checkpoint_extra(directory: Union[str, Path]) -> Dict[str, Any]:
    """The ``extra`` metadata of the checkpoint in ``directory``.

    Returns ``{}`` when no checkpoint manifest exists.  Reads the JSON
    only — no array hash verification — so callers that just need the
    bookkeeping fields (e.g. the migration-epoch counter the executor
    stores alongside the state) pay no npz scan; the arrays are verified
    when :func:`load_checkpoint` restores the state proper.
    """
    paths = checkpoint_paths(Path(directory))
    if not paths["json"].is_file():
        return {}
    try:
        payload = json.loads(paths["json"].read_text())
    except (ValueError, OSError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint manifest {paths['json']}: {exc}"
        ) from exc
    extra = payload.get("extra", {})
    return dict(extra) if isinstance(extra, dict) else {}


def load_checkpoint(
    directory: Union[str, Path], sampler: MOSCEMSampler
) -> SamplerState:
    """Restore a :class:`SamplerState` from ``directory`` for ``sampler``.

    The sampler supplies the configuration the schedule bounds and
    validation come from; a checkpoint whose population shape disagrees
    with the sampler's configuration is rejected.
    """
    paths = checkpoint_paths(Path(directory))
    payload = _load_payload(paths)
    config = sampler.config

    with np.load(paths["npz"]) as data:
        torsions = np.array(data["torsions"], dtype=np.float64)
        coords = np.array(data["coords"], dtype=np.float64)
        closure = np.array(data["closure"], dtype=np.float64)
        scores = np.array(data["scores"], dtype=np.float64)
        fitness = (
            np.array(data["fitness"], dtype=np.float64)
            if "fitness" in data.files
            else None
        )
        acceptance = [float(x) for x in data["acceptance_history"]]
        temperatures = [float(x) for x in data["temperature_history"]]

    if torsions.shape[0] != config.population_size:
        raise CheckpointError(
            f"checkpoint population has {torsions.shape[0]} members but the "
            f"sampler is configured for {config.population_size}"
        )
    iteration = int(payload["iteration"])
    if not (0 <= iteration <= config.iterations):
        raise CheckpointError(
            f"checkpoint iteration {iteration} outside the configured "
            f"range [0, {config.iterations}]"
        )
    if len(acceptance) != iteration or len(temperatures) != iteration:
        raise CheckpointError(
            "checkpoint histories disagree with the iteration counter"
        )

    try:
        population = Population(
            torsions=torsions,
            coords=coords,
            closure=closure,
            scores=scores,
            fitness=fitness,
        )
    except ValueError as exc:
        raise CheckpointError(f"inconsistent checkpoint arrays: {exc}") from exc

    schedule = TemperatureSchedule(
        temperature=float(payload["temperature"]),
        target_acceptance=config.target_acceptance,
        minimum=config.temperature_min,
        maximum=config.temperature_max,
    )
    seed = payload.get("seed")
    streams = RandomStreams(None if seed is None else int(seed))
    state = SamplerState(
        iteration=iteration,
        population=population,
        schedule=schedule,
        mutation_rng=streams.get("mutation"),
        metropolis_rng=streams.get("metropolis"),
        acceptance_history=acceptance,
        temperature_history=temperatures,
        seed=None if seed is None else int(seed),
    )
    try:
        state.restore_rng_states(payload["rng"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"invalid RNG state in checkpoint: {exc}") from exc
    return state

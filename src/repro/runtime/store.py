"""Persistent on-disk run store.

Directory layout (everything under one *store root*)::

    <root>/
      <run_id>/
        manifest.json                  # RunManifest (spec + shard table)
        merged/
          decoys.npz                   # union of the per-shard decoy sets
          summary.json
        shards/
          shard-0000/
            status.json                # {"state", "iteration", ...}
            checkpoint.npz / .json     # latest sampler checkpoint
            decoys.npz                 # harvested decoy set (on completion)
            result.json                # shard summary + timing ledgers
          shard-0001/ ...

Shard files are only ever written by the worker that owns the shard and
every JSON write is temp-file + atomic rename, so concurrent workers never
interleave partial writes.  The store is intentionally dumb — all policy
(scheduling, resuming, merging) lives in the executor and the CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.io import write_json_atomic, write_npz_atomic
from repro.moscem.decoys import Decoy, DecoySet
from repro.runtime.spec import (
    CAMPAIGN_FORMAT_VERSION,
    MANIFEST_FORMAT_VERSION,
    Campaign,
    CampaignManifest,
    RunManifest,
    RunSpec,
    shard_name,
)
from repro.utils.timing import TimingLedger

__all__ = ["RunStore", "RunStoreError"]


class RunStoreError(RuntimeError):
    """A run store operation failed (missing run, clashing run id, ...)."""


def _read_json(path: Path) -> Dict[str, Any]:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise
    except (ValueError, OSError) as exc:
        raise RunStoreError(f"unreadable store file {path}: {exc}") from exc


class RunStore:
    """File-system backed store of runs, shards, checkpoints and results."""

    MANIFEST_NAME = "manifest.json"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def run_dir(self, run_id: str) -> Path:
        """Directory of one run."""
        return self.root / run_id

    def shard_dir(self, run_id: str, index: int) -> Path:
        """Directory of one shard of a run."""
        return self.run_dir(run_id) / "shards" / shard_name(index)

    def merged_dir(self, run_id: str) -> Path:
        """Directory holding the merged artefacts of a run."""
        return self.run_dir(run_id) / "merged"

    def lease_path(self, run_id: str, index: int) -> Path:
        """The claim-lease file of one cell (see :mod:`repro.serve.leases`).

        The store only names the path; the lease protocol (exclusive
        create, heartbeat renewal, stale takeover) lives entirely in the
        serve layer.  Leases are transient coordination metadata — like
        status documents, they carry wall-clock heartbeats and are never
        replay-compared.
        """
        return self.shard_dir(run_id, index) / "lease.json"

    # ------------------------------------------------------------------
    # Runs and manifests
    # ------------------------------------------------------------------

    def list_runs(self) -> List[str]:
        """Identifiers of every run in the store, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / self.MANIFEST_NAME).is_file()
        )

    def create_run(
        self, spec: Union[RunSpec, Campaign], exist_ok: bool = False
    ) -> Union[RunManifest, CampaignManifest]:
        """Register a run or campaign: write its manifest and cell directories.

        ``spec`` is anything with ``run_id``, ``cells()`` and ``manifest()``
        — a :class:`~repro.runtime.spec.RunSpec` or a
        :class:`~repro.runtime.spec.Campaign`.
        """
        manifest = spec.manifest()
        manifest_path = self.run_dir(spec.run_id) / self.MANIFEST_NAME
        if manifest_path.exists():
            if not exist_ok:
                raise RunStoreError(
                    f"run {spec.run_id!r} already exists in {self.root}"
                )
            existing = self.load_manifest(spec.run_id)
            if existing.spec != spec:
                raise RunStoreError(
                    f"run {spec.run_id!r} exists with a different spec; "
                    "choose a new run id"
                )
            return existing
        for cell in spec.cells():
            self.shard_dir(spec.run_id, cell.index).mkdir(
                parents=True, exist_ok=True
            )
        write_json_atomic(manifest_path, manifest.to_dict())
        return manifest

    def load_manifest(self, run_id: str) -> Union[RunManifest, CampaignManifest]:
        """Load the manifest of ``run_id`` (raises if absent or invalid).

        Dispatches on the document's ``format_version``: version 1 is a
        single-target :class:`RunManifest`, version 2 a multi-target
        :class:`CampaignManifest`.
        """
        path = self.run_dir(run_id) / self.MANIFEST_NAME
        try:
            payload = _read_json(path)
        except FileNotFoundError:
            raise RunStoreError(
                f"unknown run {run_id!r} in store {self.root} "
                f"(available: {self.list_runs()})"
            ) from None
        version = int(payload.get("format_version", -1))
        try:
            if version == CAMPAIGN_FORMAT_VERSION:
                return CampaignManifest.from_dict(payload)
            if version == MANIFEST_FORMAT_VERSION:
                return RunManifest.from_dict(payload)
            raise ValueError(f"unsupported manifest format_version {version}")
        except (KeyError, TypeError, ValueError) as exc:
            raise RunStoreError(f"invalid manifest for run {run_id!r}: {exc}") from exc

    # ------------------------------------------------------------------
    # Event journal
    # ------------------------------------------------------------------

    JOURNAL_NAME = "journal.jsonl"

    def journal_path(self, run_id: str) -> Path:
        """The append-only event journal of a run."""
        return self.run_dir(run_id) / self.JOURNAL_NAME

    def append_journal(self, run_id: str, record: Dict[str, Any]) -> None:
        """Append one event record to the run's journal.

        The journal is the *subscription* surface: workers append
        ``cell-done`` / ``cell-failed`` / ``migration`` events as they
        happen, and :meth:`CampaignHandle.watch` tails it instead of
        re-reading every cell's status document per poll tick.  Each
        record is one JSON line written in a single ``write`` call —
        well under ``PIPE_BUF``, so concurrent workers never interleave
        partial lines on POSIX.  The journal is an event *stream*, not
        the ledger: retried cells may append duplicate events, and a
        worker killed at the wrong instant may never append at all, so
        consumers must treat it as a hint and fall back to the store's
        ground truth (result files, migration event records).
        """
        path = self.journal_path(run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(path, "a", encoding="utf8") as handle:
            handle.write(line)

    def read_journal(
        self, run_id: str, offset: int = 0
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Events appended at or after byte ``offset``; returns a new offset.

        Only complete lines are consumed — a line still being appended is
        left for the next call, so tailing the journal never sees a torn
        record.  Feed the returned offset back in to resume the tail.
        """
        path = self.journal_path(run_id)
        if not path.is_file():
            return [], offset
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
        records: List[Dict[str, Any]] = []
        consumed = 0
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break
            consumed += len(raw)
            text = raw.strip()
            if not text:
                continue
            try:
                records.append(json.loads(text.decode("utf8")))
            except (ValueError, UnicodeDecodeError) as exc:
                raise RunStoreError(
                    f"corrupt journal line in {path} at offset "
                    f"{offset + consumed - len(raw)}: {exc}"
                ) from exc
        return records, offset + consumed

    def canonical_journal(self, run_id: str) -> bytes:
        """The replay-invariant view of a run's journal: sorted unique lines.

        The raw journal is a *stream*: event order depends on worker
        scheduling, and a cell killed after its event but before its
        result (or one re-reaching a migration boundary on resume) can
        append the same record twice.  Every record's *content* is
        deterministic — journal payloads are wall-clock-free and carry no
        worker identity (lint rule REP004) — so sorting the lines and
        dropping duplicates yields bytes that are a pure function of the
        campaign spec.  This is the equality surface the N-daemon
        kill-and-redrain tests compare: one daemon or ten, killed or not,
        the canonical journal is byte-identical.
        """
        path = self.journal_path(run_id)
        if not path.is_file():
            return b""
        with open(path, "rb") as handle:
            data = handle.read()
        lines = {raw for raw in data.split(b"\n") if raw.strip()}
        return b"\n".join(sorted(lines)) + b"\n" if lines else b""

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------

    CANCEL_NAME = "cancelled.json"

    def mark_cancelled(self, run_id: str) -> None:
        """Flag a run so the daemon stops scheduling its pending cells.

        Cells already executing finish their current trajectory; cancelling
        is a scheduling decision, not a kill signal.
        """
        if not (self.run_dir(run_id) / self.MANIFEST_NAME).is_file():
            raise RunStoreError(
                f"unknown run {run_id!r} in store {self.root} "
                f"(available: {self.list_runs()})"
            )
        write_json_atomic(
            self.run_dir(run_id) / self.CANCEL_NAME, {"cancelled": True}
        )

    def is_cancelled(self, run_id: str) -> bool:
        """Whether a run has been flagged as cancelled."""
        return (self.run_dir(run_id) / self.CANCEL_NAME).is_file()

    # ------------------------------------------------------------------
    # Shard status
    # ------------------------------------------------------------------

    def write_shard_status(self, run_id: str, index: int, **fields: Any) -> None:
        """Atomically replace the status document of a shard."""
        write_json_atomic(
            self.shard_dir(run_id, index) / "status.json", dict(fields)
        )

    def read_shard_status(self, run_id: str, index: int) -> Dict[str, Any]:
        """Status document of a shard (``{"state": "pending"}`` if unwritten)."""
        try:
            return _read_json(self.shard_dir(run_id, index) / "status.json")
        except FileNotFoundError:
            return {"state": "pending"}

    # ------------------------------------------------------------------
    # Shard traces (telemetry — status channel, never replay-compared)
    # ------------------------------------------------------------------

    def trace_path(self, run_id: str, index: int) -> Path:
        """The per-cell span-trace document (see :mod:`repro.obs.trace`).

        Like ``status.json``, a trace is transient telemetry: absent
        unless the cell was drained with tracing on, freely overwritten
        on re-drains, and never part of the replay-compared surface.
        """
        return self.shard_dir(run_id, index) / "trace.json"

    def save_shard_trace(
        self, run_id: str, index: int, document: Dict[str, Any]
    ) -> None:
        """Atomically replace the trace document of a shard."""
        path = self.trace_path(run_id, index)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_json_atomic(path, document)

    def has_shard_trace(self, run_id: str, index: int) -> bool:
        """Whether a shard has persisted a span trace."""
        return self.trace_path(run_id, index).is_file()

    def load_shard_trace(self, run_id: str, index: int) -> Dict[str, Any]:
        """The trace document of a shard (raises if never traced)."""
        try:
            return _read_json(self.trace_path(run_id, index))
        except FileNotFoundError:
            raise RunStoreError(
                f"shard {index} of run {run_id!r} has no trace "
                "(drain with tracing enabled)"
            ) from None

    # ------------------------------------------------------------------
    # Shard results
    # ------------------------------------------------------------------

    def save_shard_result(
        self,
        run_id: str,
        index: int,
        decoys: DecoySet,
        summary: Dict[str, Any],
        host_ledger: Optional[TimingLedger] = None,
        kernel_ledger: Optional[TimingLedger] = None,
    ) -> None:
        """Persist a completed shard: decoy arrays, summary and ledgers."""
        shard_dir = self.shard_dir(run_id, index)
        shard_dir.mkdir(parents=True, exist_ok=True)
        self._save_decoys(shard_dir / "decoys.npz", decoys)
        payload = dict(summary)
        payload["n_decoys"] = len(decoys)
        payload["distinctness_threshold"] = float(decoys.distinctness_threshold)
        payload["host_ledger"] = (host_ledger or TimingLedger()).to_dict()
        payload["kernel_ledger"] = (kernel_ledger or TimingLedger()).to_dict()
        write_json_atomic(shard_dir / "result.json", payload)

    def has_shard_result(self, run_id: str, index: int) -> bool:
        """Whether a shard has written its result files."""
        shard_dir = self.shard_dir(run_id, index)
        return (shard_dir / "result.json").is_file() and (
            shard_dir / "decoys.npz"
        ).is_file()

    def load_shard_summary(self, run_id: str, index: int) -> Dict[str, Any]:
        """The ``result.json`` document of a completed shard."""
        try:
            return _read_json(self.shard_dir(run_id, index) / "result.json")
        except FileNotFoundError:
            raise RunStoreError(
                f"shard {index} of run {run_id!r} has no result yet"
            ) from None

    def load_shard_result(
        self, run_id: str, index: int
    ) -> Tuple[Dict[str, Any], DecoySet, Dict[str, TimingLedger]]:
        """Summary, decoy set and timing ledgers of a completed shard.

        One ``result.json`` read serves all three views — bulk consumers
        (the merge) should prefer this over the individual accessors.
        """
        summary = self.load_shard_summary(run_id, index)
        decoys = self._load_decoys(
            self.shard_dir(run_id, index) / "decoys.npz",
            float(summary["distinctness_threshold"]),
        )
        ledgers = {
            "host": TimingLedger.from_dict(summary.get("host_ledger", {})),
            "kernel": TimingLedger.from_dict(summary.get("kernel_ledger", {})),
        }
        return summary, decoys, ledgers

    def load_shard_decoys(self, run_id: str, index: int) -> DecoySet:
        """The decoy set a completed shard harvested."""
        return self.load_shard_result(run_id, index)[1]

    def load_shard_ledgers(
        self, run_id: str, index: int
    ) -> Dict[str, TimingLedger]:
        """Host and kernel timing ledgers of a completed shard."""
        return self.load_shard_result(run_id, index)[2]

    # ------------------------------------------------------------------
    # Merged artefacts
    # ------------------------------------------------------------------

    def save_merged(
        self, run_id: str, decoys: DecoySet, summary: Dict[str, Any]
    ) -> None:
        """Persist the cross-shard merged decoy set and its summary."""
        merged = self.merged_dir(run_id)
        merged.mkdir(parents=True, exist_ok=True)
        self._save_decoys(merged / "decoys.npz", decoys)
        payload = dict(summary)
        payload["n_decoys"] = len(decoys)
        payload["distinctness_threshold"] = float(decoys.distinctness_threshold)
        write_json_atomic(merged / "summary.json", payload)

    def load_merged(self, run_id: str) -> DecoySet:
        """The merged decoy set of a run (raises if never merged)."""
        merged = self.merged_dir(run_id)
        try:
            summary = _read_json(merged / "summary.json")
        except FileNotFoundError:
            raise RunStoreError(f"run {run_id!r} has not been merged yet") from None
        return self._load_decoys(
            merged / "decoys.npz", float(summary["distinctness_threshold"])
        )

    # ------------------------------------------------------------------
    # Decoy array round trip
    # ------------------------------------------------------------------

    @staticmethod
    def _save_decoys(path: Path, decoys: DecoySet) -> None:
        if len(decoys):
            arrays = {
                "torsions": np.stack([d.torsions for d in decoys]),
                "coords": np.stack([d.coords for d in decoys]),
                "scores": np.stack([d.scores for d in decoys]),
                "rmsd": np.array([d.rmsd for d in decoys], dtype=np.float64),
                "trajectory": np.array(
                    [d.trajectory for d in decoys], dtype=np.int64
                ),
            }
        else:
            arrays = {
                "torsions": np.zeros((0, 0)),
                "coords": np.zeros((0, 0, 4, 3)),
                "scores": np.zeros((0, 0)),
                "rmsd": np.zeros(0),
                "trajectory": np.zeros(0, dtype=np.int64),
            }
        write_npz_atomic(path, arrays)

    @staticmethod
    def _load_decoys(path: Path, distinctness_threshold: float) -> DecoySet:
        decoys = DecoySet(distinctness_threshold=distinctness_threshold)
        with np.load(path) as data:
            n = data["rmsd"].shape[0]
            for i in range(n):
                decoys.absorb(
                    Decoy(
                        torsions=np.array(data["torsions"][i], dtype=np.float64),
                        coords=np.array(data["coords"][i], dtype=np.float64),
                        scores=np.array(data["scores"][i], dtype=np.float64),
                        rmsd=float(data["rmsd"][i]),
                        trajectory=int(data["trajectory"][i]),
                    )
                )
        return decoys

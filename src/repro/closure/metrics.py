"""Closure quality metrics."""

from __future__ import annotations

import numpy as np

from repro.geometry.rmsd import coordinate_rmsd

__all__ = ["closure_rmsd", "is_closed"]


def closure_rmsd(closure_atoms: np.ndarray, c_anchor: np.ndarray) -> float:
    """RMSD (A) between the built closure atoms and the fixed C-anchor atoms."""
    return coordinate_rmsd(closure_atoms, c_anchor)


def is_closed(closure_atoms: np.ndarray, c_anchor: np.ndarray, tolerance: float = 0.25) -> bool:
    """Whether the loop end matches the anchor within ``tolerance`` Angstroms."""
    return closure_rmsd(closure_atoms, c_anchor) <= tolerance

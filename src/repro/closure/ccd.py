"""Cyclic Coordinate Descent loop closure (scalar and batched).

For each pivot torsion (phi rotates about the N-CA bond, psi about the
CA-C bond) CCD computes, in closed form, the rotation angle that minimises
the summed squared distance between the three *moving* end atoms
(``N_{n+1}``, ``CA_{n+1}``, ``C_{n+1}`` as built from the current loop) and
their *fixed* anchor positions, then applies that rotation to every atom
downstream of the pivot.  Sweeps repeat until the closure RMSD drops below
tolerance or the iteration budget is exhausted.

Because the rotations are applied directly to Cartesian coordinates, the
final torsion vector is re-measured from the closed coordinates — the
round-trip property of :mod:`repro.geometry` guarantees the two
representations stay consistent.

The batched kernel has two execution paths.  The default (``kernels=None``)
is the original numpy implementation: converged members are sliced out of
each sweep and only members with a non-trivial angle are rotated.  When a
:class:`~repro.xp.dispatch.KernelBundle` is supplied, each sweep instead
runs the generic :func:`_ccd_sweep` kernel — a full-population masked
sweep in which excluded members get a ``0.0`` angle and keep their
original coordinates through a ``where`` selection.  The masked sweep
computes bit-identical coordinates to the subset path while keeping
every array shape static — the property that lets the jax tier compile
one sweep as one ``jit`` unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro import constants
from repro.geometry.internal import backbone_torsions, backbone_torsions_batch
from repro.geometry.rmsd import coordinate_rmsd, coordinate_rmsd_batch
from repro.geometry.rotation import (
    _normalize_last_axis,
    _rotate_points_about_axes,
    rotate_about_axis,
    rotate_points_about_axes_batch,
)
from repro.geometry.vectors import normalize
from repro.loops.loop import LoopTarget
from repro.scoring.pairwise import (
    _rotation_alignment_terms,
    rotation_alignment_terms,
)
from repro.xp.dispatch import array_kernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.xp.dispatch import KernelBundle

__all__ = ["CCDResult", "ccd_close", "ccd_close_batch"]

_EPS = 1e-12
_ATOMS = constants.BACKBONE_ATOMS_PER_RESIDUE


@dataclass
class CCDResult:
    """Outcome of a CCD closure call.

    Attributes
    ----------
    torsions:
        Closed torsion vector(s): ``(2n,)`` for the scalar call, ``(P, 2n)``
        for the batched call.
    coords:
        Closed loop coordinates, ``(n, 4, 3)`` or ``(P, n, 4, 3)``.
    closure:
        Built closure atoms, ``(3, 3)`` or ``(P, 3, 3)``.
    closure_error:
        Final closure RMSD (scalar or ``(P,)``).
    iterations:
        Number of CCD sweeps executed (scalar or ``(P,)``; for the batched
        call every member reports the sweep at which it converged, or the
        sweep budget if it never did).
    """

    torsions: np.ndarray
    coords: np.ndarray
    closure: np.ndarray
    closure_error: np.ndarray
    iterations: np.ndarray


def _pivot_indices(j: int) -> Tuple[int, int, int]:
    """Map torsion index ``j`` to (axis atom B, axis atom C, first moving atom).

    Indices are into the flattened per-conformation atom array of
    ``n * 4 + 3`` rows (N, CA, C, O per residue, then the three closure
    atoms).  Even ``j`` is a phi torsion of residue ``i = j // 2`` (axis
    N_i -> CA_i, moving atoms start at C_i); odd ``j`` is the psi torsion
    (axis CA_i -> C_i, moving atoms start at O_i).
    """
    i = j // 2
    if j % 2 == 0:
        return i * _ATOMS + 0, i * _ATOMS + 1, i * _ATOMS + 2
    return i * _ATOMS + 1, i * _ATOMS + 2, i * _ATOMS + 3


def _optimal_angle(
    end_atoms: np.ndarray, targets: np.ndarray, origin: np.ndarray, axis: np.ndarray
) -> float:
    """Closed-form optimal CCD rotation angle for one conformation.

    Uses the expanded forms ``r_perp . f_perp = r.f - (r.axis)(f.axis)`` and
    ``(axis x r_perp) . f_perp = axis . (r x f)``, which need no
    perpendicular-component vectors.
    """
    a = 0.0
    b = 0.0
    for k in range(end_atoms.shape[0]):
        r = end_atoms[k] - origin
        f = targets[k] - origin
        a += np.dot(r, f) - np.dot(r, axis) * np.dot(f, axis)
        b += np.dot(axis, np.cross(r, f))
    if abs(a) < _EPS and abs(b) < _EPS:
        return 0.0
    return float(np.arctan2(b, a))


def ccd_close(
    torsions: np.ndarray,
    target: LoopTarget,
    start_index: int = 0,
    max_iterations: int = 30,
    tolerance: float = 0.25,
) -> CCDResult:
    """Close a single loop conformation with CCD (scalar reference version).

    Parameters
    ----------
    torsions:
        ``(2n,)`` torsion vector of the open conformation.
    target:
        The loop target supplying anchors and geometry.
    start_index:
        First torsion index CCD is allowed to adjust.  The paper starts CCD
        at the torsion immediately following the mutated ones, leaving the
        freshly mutated angles untouched.
    max_iterations:
        Maximum number of CCD sweeps.
    tolerance:
        Closure RMSD (A) below which the loop counts as closed.
    """
    torsions = np.asarray(torsions, dtype=np.float64)
    n = target.n_residues
    if torsions.shape != (2 * n,):
        raise ValueError(f"torsions must have shape ({2 * n},)")
    if not (0 <= start_index < 2 * n):
        raise ValueError("start_index out of range")

    coords, closure = target.build(torsions)
    moving = np.concatenate([coords.reshape(-1, 3), closure])  # (n*4+3, 3)
    anchors = target.c_anchor

    error = coordinate_rmsd(moving[-3:], anchors)
    sweeps = 0
    for sweep in range(max_iterations):
        if error <= tolerance:
            break
        sweeps = sweep + 1
        for j in range(start_index, 2 * n):
            b_idx, c_idx, move_start = _pivot_indices(j)
            origin = moving[b_idx]
            axis = moving[c_idx] - origin
            norm = np.linalg.norm(axis)
            if norm < _EPS:
                continue
            axis = axis / norm
            angle = _optimal_angle(moving[-3:], anchors, origin, axis)
            if abs(angle) < 1e-10:
                continue
            moving[move_start:] = rotate_about_axis(
                moving[move_start:], origin, axis, angle
            )
        error = coordinate_rmsd(moving[-3:], anchors)

    coords = moving[: n * _ATOMS].reshape(n, _ATOMS, 3)
    closure = moving[n * _ATOMS:]
    closed_torsions = backbone_torsions(coords, target.n_anchor, closure)
    return CCDResult(
        torsions=closed_torsions,
        coords=coords,
        closure=closure,
        closure_error=np.float64(error),
        iterations=np.int64(sweeps),
    )


@array_kernel("ccd_sweep", static_argnums=(4,))
def _ccd_sweep(xp, moving, anchors, start_indices, active, n_torsions):
    """One full CCD sweep over every pivot, masked, shapes static.

    ``moving`` is the ``(P, n*4+3, 3)`` flattened atom array; ``active``
    the ``(P,)`` mask of members still converging; ``n_torsions`` (static
    under jit) the pivot count ``2n``.  Members excluded by the mask, the
    per-member start indices, the noise guard or a degenerate pivot axis
    get a ``0.0`` angle and their original coordinates are re-selected
    after the rotation, so this computes bit-identical coordinates to the
    subset path of :func:`ccd_close_batch`.
    """
    for j in range(n_torsions):
        b_idx, c_idx, move_start = _pivot_indices(j)
        origins = moving[:, b_idx, :]
        raw_axes = moving[:, c_idx, :] - origins
        axes = _normalize_last_axis(xp, raw_axes)

        a, b = _rotation_alignment_terms(
            xp, moving[:, -3:, :], anchors, origins, axes
        )
        angles = xp.arctan2(b, a)
        # Same exclusions as the numpy subset path, expressed as masks:
        # pivots before a member's mutation point, pure-noise gradient
        # terms, degenerate axes, converged members, sub-threshold angles.
        angles = xp.where(start_indices <= j, angles, 0.0)
        angles = xp.where((xp.abs(a) < _EPS) & (xp.abs(b) < _EPS), 0.0, angles)
        angles = xp.where(
            xp.einsum("pi,pi->p", raw_axes, raw_axes) < _EPS * _EPS, 0.0, angles
        )
        angles = xp.where(active, angles, 0.0)

        # Rotations below the angle threshold are discarded by selection,
        # not by rotating with a zero angle: ``(p - origin) + origin`` is
        # a lossy round trip, so excluded members must keep their original
        # coordinates verbatim for the sweep to match the subset path bit
        # for bit.
        rotating = xp.abs(angles) > 1e-10
        tail = moving[:, move_start:, :]
        rotated = _rotate_points_about_axes(
            xp, tail, origins, axes, angles, normalized=True
        )
        tail = xp.where(rotating[:, None, None], rotated, tail)
        moving = xp.concatenate((moving[:, :move_start, :], tail), axis=1)
    return moving


def ccd_close_batch(
    torsions: np.ndarray,
    target: LoopTarget,
    start_indices: Optional[np.ndarray] = None,
    max_iterations: int = 30,
    tolerance: float = 0.25,
    kernels: Optional["KernelBundle"] = None,
) -> CCDResult:
    """Close a whole population with CCD in lock-step (batched version).

    This is the simulated analogue of the paper's ``[CCD]`` GPU kernel: each
    population member corresponds to one GPU thread, and every pivot update
    is applied to all members simultaneously as a vectorised operation.

    Parameters
    ----------
    torsions:
        ``(P, 2n)`` population torsions.
    target:
        The loop target supplying anchors and geometry.
    start_indices:
        Optional ``(P,)`` integer array: the first torsion index CCD may
        adjust for each member (mirroring the per-thread mutation points).
        Pivots below a member's start index leave that member unchanged.
    max_iterations:
        Maximum number of CCD sweeps.
    tolerance:
        Closure RMSD below which a member stops being updated.
    kernels:
        Optional :class:`~repro.xp.dispatch.KernelBundle`: sweeps run as
        the masked full-population :func:`_ccd_sweep` kernel (one jit unit
        per sweep on a compiling namespace) instead of the numpy subset
        path.  Both paths produce the same coordinates.
    """
    torsions = np.asarray(torsions, dtype=np.float64)
    n = target.n_residues
    if torsions.ndim != 2 or torsions.shape[1] != 2 * n:
        raise ValueError(f"torsions must have shape (P, {2 * n})")
    pop = torsions.shape[0]

    if start_indices is None:
        start_indices = np.zeros(pop, dtype=np.int64)
    else:
        start_indices = np.asarray(start_indices, dtype=np.int64)
        if start_indices.shape != (pop,):
            raise ValueError("start_indices must have shape (P,)")
        if np.any((start_indices < 0) | (start_indices >= 2 * n)):
            raise ValueError("start_indices out of range")

    coords, closure = target.build_batch(torsions)
    moving = np.concatenate(
        [coords.reshape(pop, -1, 3), closure], axis=1
    )  # (P, n*4+3, 3)
    anchors = target.c_anchor  # (3, 3)

    errors = coordinate_rmsd_batch(moving[:, -3:, :], anchors)
    converged_at = np.where(errors <= tolerance, 0, max_iterations).astype(np.int64)

    for sweep in range(max_iterations):
        active = errors > tolerance
        if not np.any(active):
            break
        if kernels is not None:
            moving = kernels.to_numpy(
                kernels.ccd_sweep(moving, anchors, start_indices, active, 2 * n)
            )
            errors = coordinate_rmsd_batch(moving[:, -3:, :], anchors)
            newly = (errors <= tolerance) & (converged_at == max_iterations)
            converged_at[newly] = sweep + 1
            continue
        # Converged members are excluded from the whole sweep, not just the
        # rotations: all per-pivot math runs on the active subset only, so
        # the cost of a sweep shrinks as the population closes (matching
        # the scalar kernel, whose converged members simply stop sweeping).
        subset = not np.all(active)
        if subset:
            rows = np.where(active)[0]
            sub = moving[rows]
            sub_starts = start_indices[rows]
        else:
            sub = moving
            sub_starts = start_indices
        for j in range(2 * n):
            b_idx, c_idx, move_start = _pivot_indices(j)
            origins = sub[:, b_idx, :]
            raw_axes = sub[:, c_idx, :] - origins
            axes = normalize(raw_axes)

            # The per-pivot math is the shared pairwise engine's
            # gather-and-reduce primitive (the same expanded perpendicular
            # products _optimal_angle evaluates per member).
            a, b = rotation_alignment_terms(
                sub[:, -3:, :], anchors, origins, axes
            )
            angles = np.arctan2(b, a)
            # Members whose mutation point is after this pivot keep it
            # fixed, as do members whose gradient terms are pure noise and
            # members with a degenerate (zero-length) pivot axis — the
            # scalar kernel skips the latter with its `norm < _EPS` guard,
            # and rotating about a near-zero axis would scale the tail.
            angles = np.where(sub_starts <= j, angles, 0.0)
            angles = np.where((np.abs(a) < _EPS) & (np.abs(b) < _EPS), 0.0, angles)
            angles = np.where(
                np.einsum("pi,pi->p", raw_axes, raw_axes) < _EPS * _EPS, 0.0, angles
            )
            rotating = np.abs(angles) > 1e-10
            if not np.any(rotating):
                continue
            if np.all(rotating):
                sub[:, move_start:, :] = rotate_points_about_axes_batch(
                    sub[:, move_start:, :], origins, axes, angles, normalized=True
                )
            else:
                # Only rotate the members that actually move instead of
                # paying for identity rotations.
                move = np.where(rotating)[0]
                sub[move, move_start:, :] = rotate_points_about_axes_batch(
                    sub[move, move_start:, :],
                    origins[move],
                    axes[move],
                    angles[move],
                    normalized=True,
                )
        if subset:
            moving[rows] = sub

        errors = coordinate_rmsd_batch(moving[:, -3:, :], anchors)
        newly = (errors <= tolerance) & (converged_at == max_iterations)
        converged_at[newly] = sweep + 1

    coords = moving[:, : n * _ATOMS, :].reshape(pop, n, _ATOMS, 3)
    closure = moving[:, n * _ATOMS:, :]
    closed_torsions = backbone_torsions_batch(coords, target.n_anchor, closure)
    return CCDResult(
        torsions=closed_torsions,
        coords=coords,
        closure=closure,
        closure_error=errors,
        iterations=converged_at,
    )

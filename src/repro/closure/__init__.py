"""Loop closure by Cyclic Coordinate Descent (CCD).

New conformations proposed by mutating torsion angles generally leave the
loop end dangling away from its fixed C-terminal anchor.  The CCD algorithm
of Canutescu & Dunbrack (paper ref [25]) restores closure by sweeping over
the loop's torsion angles and, for each one, applying the rotation that best
superimposes the three moving end atoms onto the anchor atoms.

This is by far the most expensive kernel of the sampler (75% of GPU time in
the paper's Table II), so both a scalar and a fully batched implementation
are provided.
"""

from repro.closure.ccd import CCDResult, ccd_close, ccd_close_batch
from repro.closure.metrics import closure_rmsd, is_closed

__all__ = [
    "CCDResult",
    "ccd_close",
    "ccd_close_batch",
    "closure_rmsd",
    "is_closed",
]

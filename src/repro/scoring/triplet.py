"""Triplet torsion-angle statistical potential ([TRIPLET], paper ref [7]).

The potential measures the favourability of each loop residue's (phi, psi)
pair given the residue-type triplet it sits in, using ``-log`` probability
tables derived from a loop library.  Evaluation is a pure table lookup, which
is why the paper's ``EvalTRIP`` kernel is by far the cheapest of the three
scoring kernels (Table II: 0.04% of GPU time).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.loops.loop import LoopTarget
from repro.scoring.base import ScoringFunction
from repro.scoring.knowledge import (
    KnowledgeBase,
    default_knowledge_base,
    torsion_bin,
    triplet_class_index,
)
from repro.scoring.pairwise import population_blocks

__all__ = ["TripletScore"]


class TripletScore(ScoringFunction):
    """Triplet torsion-angle scoring function bound to one loop target."""

    name = "TRIPLET"
    kernel_name = "EvalTRIP"
    #: Registers per thread of the corresponding CUDA kernel (paper Table III).
    registers_per_thread = 20

    def __init__(
        self,
        target: LoopTarget,
        knowledge_base: Optional[KnowledgeBase] = None,
        block_size: Optional[int] = None,
    ) -> None:
        self.target = target
        self.knowledge_base = (
            knowledge_base if knowledge_base is not None else default_knowledge_base()
        )
        self.block_size = block_size
        seq = target.sequence
        n = len(seq)
        # Pre-compute the triplet class of every loop residue.  Residues at
        # the loop boundary use their own type for the missing neighbour,
        # matching how the knowledge base was built.
        classes = np.empty(n, dtype=np.int64)
        for i in range(n):
            prev_aa = seq[i - 1] if i > 0 else seq[i]
            next_aa = seq[i + 1] if i + 1 < n else seq[i]
            classes[i] = triplet_class_index(prev_aa, seq[i], next_aa)
        self._classes = classes
        # Pre-slice the table rows for the loop's classes: (n, B, B).
        self._tables = self.knowledge_base.triplet_neg_log[classes]

    def evaluate(self, coords: np.ndarray, torsions: np.ndarray) -> float:
        """Sum of ``-log P(phi_i, psi_i | triplet class)`` over loop residues.

        An exact one-member special case of :meth:`evaluate_batch`.
        """
        torsions = np.asarray(torsions, dtype=np.float64)
        # The triplet potential never reads coordinates, but keep the batch
        # call shape-consistent with the other scorers when they are given.
        batch_coords = None if coords is None else np.asarray(coords)[None]
        return float(self.evaluate_batch(batch_coords, torsions[None])[0])

    def evaluate_batch(self, coords: np.ndarray, torsions: np.ndarray) -> np.ndarray:
        """Vectorised lookup over the whole population, in population chunks."""
        torsions = np.asarray(torsions, dtype=np.float64)
        pop = torsions.shape[0]
        totals = np.empty(pop, dtype=np.float64)
        residue_idx = np.arange(len(self._classes))[None, :]
        for block in population_blocks(pop, self.block_size):
            phi_bins = torsion_bin(torsions[block, 0::2])  # (B, n)
            psi_bins = torsion_bin(torsions[block, 1::2])  # (B, n)
            values = self._tables[residue_idx, phi_bins, psi_bins]  # (B, n)
            totals[block] = values.sum(axis=1)
        return totals

"""Atom pair-wise distance-based scoring function ([DIST], paper ref [6]).

For every pair of backbone atoms within the loop (separated by at least one
residue), the potential scores the observed distance against the library
distribution for that atom-type pair and sequence separation.  Like the
original potential, the tables are pre-computed and constant during
sampling; the paper keeps them in GPU texture memory.

Evaluation runs on the shared pairwise kernel engine
(:mod:`repro.scoring.pairwise`): squared distances are binned against
pre-squared edges (no ``sqrt``), each pair reads its own pre-gathered table
row, and the population is processed in cache-sized chunks.  Pairs at or
beyond ``DISTANCE_MAX`` read the neutral overflow column and contribute
zero — the tables hold no statistics out there.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import constants
from repro.loops.loop import LoopTarget
from repro.scoring.base import ScoringFunction
from repro.scoring.knowledge import (
    DISTANCE_SQ_EDGES,
    KnowledgeBase,
    atom_pair_index,
    default_knowledge_base,
    separation_class,
)
from repro.scoring.pairwise import binned_table_sum

__all__ = ["DistanceScore"]


class DistanceScore(ScoringFunction):
    """Pairwise backbone-distance scoring function bound to one loop target."""

    name = "DIST"
    kernel_name = "EvalDIST"
    #: Registers per thread of the corresponding CUDA kernel (paper Table III).
    registers_per_thread = 32

    def __init__(
        self,
        target: LoopTarget,
        knowledge_base: Optional[KnowledgeBase] = None,
        min_separation: int = 1,
        block_size: Optional[int] = None,
    ) -> None:
        if min_separation < 1:
            raise ValueError("min_separation must be >= 1")
        self.target = target
        self.knowledge_base = (
            knowledge_base if knowledge_base is not None else default_knowledge_base()
        )
        self.min_separation = min_separation
        self.block_size = block_size

        n = target.n_residues
        n_types = constants.BACKBONE_ATOMS_PER_RESIDUE

        # Pre-compute flat atom-pair index arrays for the loop: for every
        # residue pair (i, j) with j - i >= min_separation and every backbone
        # atom-type combination, record the two flat atom indices, the
        # atom-pair type and the separation class.
        first_idx = []
        second_idx = []
        pair_type = []
        sep_cls = []
        for i in range(n):
            for j in range(i + self.min_separation, n):
                s = separation_class(j - i)
                for a in range(n_types):
                    for b in range(n_types):
                        first_idx.append(i * n_types + a)
                        second_idx.append(j * n_types + b)
                        pair_type.append(atom_pair_index(a, b))
                        sep_cls.append(s)
        self._first = np.array(first_idx, dtype=np.int64)
        self._second = np.array(second_idx, dtype=np.int64)
        self._pair_type = np.array(pair_type, dtype=np.int64)
        self._sep_cls = np.array(sep_cls, dtype=np.int64)

        # Gather each pair's table row once, padded with a neutral overflow
        # column read by out-of-range pairs: (n_pairs, DISTANCE_BINS + 1).
        table = self.knowledge_base.distance_neg_log
        rows = table[self._pair_type, self._sep_cls]
        self._pair_tables = np.ascontiguousarray(
            np.concatenate([rows, np.zeros((rows.shape[0], 1))], axis=1)
        )

    @property
    def n_pairs(self) -> int:
        """Number of atom pairs scored per conformation."""
        return self._first.size

    def evaluate(self, coords: np.ndarray, torsions: np.ndarray) -> float:
        """Sum of pair scores for one conformation.

        An exact one-member special case of :meth:`evaluate_batch` — the
        shared engine guarantees bit-identical per-member arithmetic.
        """
        coords = np.asarray(coords, dtype=np.float64)
        return float(self.evaluate_batch(coords[None], None)[0])

    def evaluate_batch(self, coords: np.ndarray, torsions: np.ndarray) -> np.ndarray:
        """Chunked, sqrt-free pair scoring over the whole population."""
        coords = np.asarray(coords, dtype=np.float64)
        pop = coords.shape[0]
        flat = coords.reshape(pop, -1, 3)
        return binned_table_sum(
            flat,
            self._first,
            self._second,
            self._pair_tables,
            DISTANCE_SQ_EDGES,
            block_size=self.block_size,
            kernels=self.kernels,
        )

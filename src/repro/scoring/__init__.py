"""The three backbone scoring functions of the paper plus supporting machinery.

* :class:`~repro.scoring.triplet.TripletScore` — triplet torsion-angle
  statistical potential (paper ref [7]).
* :class:`~repro.scoring.distance.DistanceScore` — atom pair-wise
  distance-based knowledge potential (paper ref [6]).
* :class:`~repro.scoring.vdw.SoftSphereVDW` — soft-sphere van der Waals
  clash score against the loop itself and the protein environment
  (paper ref [8]).

All three are *backbone* scores with side chains represented implicitly
(through centroids or through statistics), evaluate quickly, and measure
loop favourability through different physics — the properties the paper
gives for selecting them.
"""

from repro.scoring.base import MultiScore, ScoringFunction
from repro.scoring.knowledge import (
    KnowledgeBase,
    build_knowledge_base,
    default_knowledge_base,
)
from repro.scoring.pairwise import (
    DEFAULT_BLOCK_SIZE,
    EnvironmentGrid,
    population_blocks,
)
from repro.scoring.triplet import TripletScore
from repro.scoring.distance import DistanceScore
from repro.scoring.vdw import SoftSphereVDW
from repro.scoring.composite import WeightedSumScore
from repro.scoring.normalization import normalize_scores, score_ranges

__all__ = [
    "ScoringFunction",
    "MultiScore",
    "KnowledgeBase",
    "build_knowledge_base",
    "default_knowledge_base",
    "DEFAULT_BLOCK_SIZE",
    "EnvironmentGrid",
    "population_blocks",
    "TripletScore",
    "DistanceScore",
    "SoftSphereVDW",
    "WeightedSumScore",
    "normalize_scores",
    "score_ranges",
    "DEFAULT_SCORERS",
    "build_multi_score",
    "default_multi_score",
]

#: Registry names of the paper's scoring-function set, in evaluation order.
DEFAULT_SCORERS = ("vdw", "triplet", "dist")


def build_multi_score(
    names, target, knowledge_base=None, block_size=None
) -> MultiScore:
    """Assemble a :class:`MultiScore` from scorer registry names.

    Parameters
    ----------
    names:
        Scorer names resolvable by :data:`repro.api.registry.SCORERS`
        (built-ins: ``"vdw"``, ``"triplet"``, ``"dist"``; more can be
        contributed via :func:`repro.api.registry.register_scorer`).
    target:
        A :class:`repro.loops.loop.LoopTarget`.
    knowledge_base:
        Optional pre-built :class:`KnowledgeBase`; the default synthetic one
        is used otherwise.
    block_size:
        Population chunk size of the batched kernels; ``None`` or ``0``
        selects :data:`repro.scoring.pairwise.DEFAULT_BLOCK_SIZE`.
    """
    from repro.api.registry import SCORERS

    kb = knowledge_base if knowledge_base is not None else default_knowledge_base()
    return MultiScore(
        [
            SCORERS.create(name, target, knowledge_base=kb, block_size=block_size)
            for name in names
        ]
    )


def default_multi_score(target, knowledge_base=None, block_size=None) -> MultiScore:
    """The paper's scoring-function set (VDW, TRIPLET, DIST) for a target."""
    return build_multi_score(
        DEFAULT_SCORERS, target, knowledge_base=knowledge_base, block_size=block_size
    )

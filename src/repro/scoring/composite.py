"""Weighted-sum composite score.

The paper contrasts multi-scoring-function *sampling* with the traditional
approach of globally optimising a single (possibly composite) scoring
function (Section II).  :class:`WeightedSumScore` is that traditional
single-objective baseline: a fixed linear combination of the individual
scoring functions, used by :mod:`repro.moscem.baseline` and by the ablation
benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.scoring.base import MultiScore, ScoringFunction

__all__ = ["WeightedSumScore"]


class WeightedSumScore(ScoringFunction):
    """A single scalar score formed as a weighted sum of member scores."""

    name = "COMPOSITE"
    kernel_name = "EvalComposite"
    registers_per_thread = 32

    def __init__(
        self,
        multi_score: MultiScore,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        self.multi_score = multi_score
        k = len(multi_score)
        if weights is None:
            weights = np.ones(k, dtype=np.float64) / k
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (k,):
            raise ValueError(f"weights must have shape ({k},), got {weights.shape}")
        if np.any(weights < 0.0):
            raise ValueError("weights must be non-negative")
        if weights.sum() <= 0.0:
            raise ValueError("at least one weight must be positive")
        self.weights = weights

    def evaluate(self, coords: np.ndarray, torsions: np.ndarray) -> float:
        """Weighted sum of the member scores for one conformation."""
        scores = self.multi_score.evaluate(coords, torsions)
        return float(np.dot(self.weights, scores))

    def evaluate_batch(self, coords: np.ndarray, torsions: np.ndarray) -> np.ndarray:
        """Weighted sum of the member scores for a population."""
        scores = self.multi_score.evaluate_batch(coords, torsions)
        return scores @ self.weights

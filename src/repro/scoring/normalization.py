"""Score normalisation helpers.

Figure 5 of the paper plots the non-dominated conformations on normalised
score axes (each scoring function min-max scaled to [0, 1] over the plotted
set).  These helpers implement that normalisation plus simple range
summaries used by the reports.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["normalize_scores", "score_ranges"]


def normalize_scores(scores: np.ndarray, axis: int = 0) -> np.ndarray:
    """Min-max normalise each score column to [0, 1].

    Columns with zero spread (all values identical) map to 0.0, so perfectly
    flat objectives do not produce NaNs.
    """
    scores = np.asarray(scores, dtype=np.float64)
    lo = scores.min(axis=axis, keepdims=True)
    hi = scores.max(axis=axis, keepdims=True)
    span = hi - lo
    span = np.where(span <= 0.0, 1.0, span)
    out = (scores - lo) / span
    return np.where(hi - lo <= 0.0, 0.0, out)


def score_ranges(scores: np.ndarray, names: Sequence[str]) -> Dict[str, Tuple[float, float]]:
    """Per-objective (min, max) ranges, keyed by scoring-function name."""
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2 or scores.shape[1] != len(names):
        raise ValueError("scores must have shape (P, K) with K == len(names)")
    return {
        name: (float(scores[:, k].min()), float(scores[:, k].max()))
        for k, name in enumerate(names)
    }

"""Population-batched pairwise-distance kernel engine.

All of the paper's scoring hot paths reduce to the same primitive: gather
pairs of points, measure how far apart they are, and fold a per-pair term
into a per-conformation total.  This module is the shared engine those hot
paths are built on:

* **Squared-distance math end-to-end** — no square root is taken anywhere;
  the soft-sphere penalty is evaluated directly on ``d^2`` and distance
  binning is performed against pre-squared bin edges, so the only kernels
  that would ever need a ``sqrt`` are ones that genuinely consume metric
  distances (none of the three scoring functions do).
* **Environment pruning** — :class:`EnvironmentGrid` is a uniform cell list
  over the *fixed* environment atoms, built once per scorer, with cell edge
  equal to the maximum contact radius.  Querying it touches O(neighbours)
  candidate pairs instead of all ``(P, n*4, M)`` combinations, and its
  pruned totals are bit-identical to its dense totals because the excluded
  pairs contribute exact zeros in the same accumulation order.
* **Population chunking** — :func:`population_blocks` splits a population
  into blocks of a tunable size so the pair temporaries stay cache-resident
  at paper-scale populations (15,360 members).  The default block of 128
  members deliberately matches the paper's 128 threads per block.

Every helper is deterministic per member: evaluating a one-member
population yields bit-identical numbers to evaluating the same member
inside a larger chunked batch, which is what makes the scalar scoring
paths exact special cases of the batched ones.

The per-pair math lives in *generic kernels* registered with the
:mod:`repro.xp` facade (functions taking an array namespace ``xp`` as
first argument): the public functions below bind them to numpy once at
import — bit-identical to the pre-facade implementations — while the
optional ``kernels=`` parameter routes the same definitions through a
:class:`~repro.xp.dispatch.KernelBundle` resolved at stack-assembly
time (jit-compiled on the JAX tier).  Host-side orchestration — block
slicing, total accumulation, the :class:`EnvironmentGrid` cell list —
stays numpy: it is control flow, not array math.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Tuple

import numpy as np

from repro.xp.dispatch import array_kernel
from repro.xp.xp import numpy_namespace

if TYPE_CHECKING:
    from repro.xp.dispatch import KernelBundle

#: The numpy namespace the public wrappers are bound to (resolved once).
_XP = numpy_namespace()

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "resolve_block_size",
    "population_blocks",
    "soft_sphere_penalty_sq",
    "indexed_sq_distances",
    "indexed_penalty_sum",
    "rotation_alignment_terms",
    "squared_bin_edges",
    "bin_squared_distances",
    "binned_table_sum",
    "EnvironmentGrid",
]

#: Default number of population members processed per chunk (the paper's
#: thread-block size).
DEFAULT_BLOCK_SIZE: int = 128


def resolve_block_size(block_size: Optional[int], population_size: int) -> int:
    """The effective chunk size: ``block_size`` if positive, else the default.

    Never larger than the population and never smaller than one, so callers
    can pass user configuration (where ``0`` means "auto") straight through.
    """
    if block_size is None or block_size <= 0:
        block_size = DEFAULT_BLOCK_SIZE
    return max(1, min(int(block_size), int(population_size)))


def population_blocks(
    population_size: int, block_size: Optional[int] = None
) -> Iterator[slice]:
    """Yield slices covering ``[0, population_size)`` in chunks.

    Parameters
    ----------
    population_size:
        Number of population members to cover.
    block_size:
        Members per chunk; ``None`` or ``<= 0`` selects
        :data:`DEFAULT_BLOCK_SIZE`.
    """
    if population_size <= 0:
        return
    step = resolve_block_size(block_size, population_size)
    for start in range(0, population_size, step):
        yield slice(start, min(start + step, population_size))


@array_kernel("soft_sphere_penalty_sq")
def _soft_sphere_penalty_sq(xp, sq_distances, sq_contacts):
    """Generic soft-sphere penalty on squared distances (see wrapper)."""
    sq_distances = xp.asarray(sq_distances, dtype=xp.float64)
    sq_contacts = xp.asarray(sq_contacts, dtype=xp.float64)
    # d^2 < r0^2 already implies r0^2 > 0, so one comparison covers both the
    # overlap condition and the zero-contact guard.
    mask = sq_distances < sq_contacts
    denom = xp.where(mask, sq_contacts, 1.0)
    overlap = xp.where(mask, sq_contacts - sq_distances, 0.0) / denom
    return overlap * overlap


def soft_sphere_penalty_sq(
    sq_distances: np.ndarray, sq_contacts: np.ndarray
) -> np.ndarray:
    """Soft-sphere overlap penalty computed on *squared* distances.

    ``((r0^2 - d^2) / r0^2)^2`` where ``d^2 < r0^2``, zero otherwise.  The
    mask is applied before any division, so no invalid values are ever
    produced and no warning suppression is needed.  ``sq_distances`` and
    ``sq_contacts`` must broadcast together.
    """
    return _soft_sphere_penalty_sq(_XP, sq_distances, sq_contacts)


@array_kernel("indexed_sq_distances")
def _indexed_sq_distances(xp, points_a, points_b, first, second):
    """Generic squared distances of indexed point pairs (see wrapper)."""
    diff = points_a[..., first, :] - points_b[..., second, :]
    return xp.einsum("...k,...k->...", diff, diff)


def indexed_sq_distances(
    points_a: np.ndarray,
    points_b: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
) -> np.ndarray:
    """Squared distances of indexed point pairs.

    ``points_a[..., first, :]`` is paired with ``points_b[..., second, :]``;
    the result has shape ``points_a.shape[:-2] + (len(first),)``.
    """
    return _indexed_sq_distances(_XP, points_a, points_b, first, second)


@array_kernel("indexed_penalty_block")
def _indexed_penalty_block(xp, points_a, points_b, first, second, sq_contacts):
    """Per-member penalty sum of one population block (fused pair math).

    ``sq_contacts`` arrives pre-broadcast as ``(1, n_pairs)``.  The
    einsum row-sum reduces each member independently, so totals do not
    depend on the chunk size (``np.sum``'s pairwise blocking does).
    """
    sq_d = _indexed_sq_distances(xp, points_a, points_b, first, second)
    return xp.einsum("pk->p", _soft_sphere_penalty_sq(xp, sq_d, sq_contacts))


def indexed_penalty_sum(
    points_a: np.ndarray,
    points_b: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
    sq_contacts: np.ndarray,
    block_size: Optional[int] = None,
    kernels: Optional["KernelBundle"] = None,
) -> np.ndarray:
    """Per-member soft-sphere penalty sum over indexed pairs, chunked.

    Parameters
    ----------
    points_a / points_b:
        ``(P, A, 3)`` / ``(P, B, 3)`` population point sets (they may be the
        same array for intra-set pairs).
    first / second:
        Pair index arrays into the second axis of ``points_a`` and
        ``points_b`` respectively.
    sq_contacts:
        ``(len(first),)`` squared contact radii per pair.
    block_size:
        Population chunk size (see :func:`population_blocks`).
    kernels:
        Optional :class:`~repro.xp.dispatch.KernelBundle` the per-block
        pair math runs through; ``None`` (the default) uses the
        numpy-bound kernels, bit-identically to the pre-facade path.
    """
    pop = points_a.shape[0]
    totals = np.zeros(pop, dtype=np.float64)
    if first.size == 0:
        return totals
    sq_contacts = sq_contacts[None, :]
    for block in population_blocks(pop, block_size):
        if kernels is None:
            part = _indexed_penalty_block(
                _XP, points_a[block], points_b[block], first, second, sq_contacts
            )
        else:
            part = kernels.to_numpy(
                kernels.indexed_penalty_block(
                    points_a[block], points_b[block], first, second, sq_contacts
                )
            )
        totals[block] = part
    return totals


@array_kernel("rotation_alignment_terms")
def _rotation_alignment_terms(xp, points, targets, origins, axes):
    """Generic CCD alignment reduction (see wrapper)."""
    r = points - origins[:, None, :]
    f = targets[None, :, :] - origins[:, None, :]
    r_ax = xp.einsum("pki,pi->pk", r, axes)
    f_ax = xp.einsum("pki,pi->pk", f, axes)
    a = xp.einsum("pki,pki->p", r, f) - xp.einsum("pk,pk->p", r_ax, f_ax)
    cx = (r[:, :, 1] * f[:, :, 2] - r[:, :, 2] * f[:, :, 1]).sum(axis=1)
    cy = (r[:, :, 2] * f[:, :, 0] - r[:, :, 0] * f[:, :, 2]).sum(axis=1)
    cz = (r[:, :, 0] * f[:, :, 1] - r[:, :, 1] * f[:, :, 0]).sum(axis=1)
    b = axes[:, 0] * cx + axes[:, 1] * cy + axes[:, 2] * cz
    return a, b


def rotation_alignment_terms(
    points: np.ndarray,
    targets: np.ndarray,
    origins: np.ndarray,
    axes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-member closed-form rotation-alignment terms ``(a, b)``.

    The gather-and-reduce primitive behind CCD's per-pivot update: for each
    member ``p`` with unit rotation axis ``axes[p]`` anchored at
    ``origins[p]``, the K point pairs (moving ``points[p, k]``, fixed
    ``targets[k]``) are reduced to

    ``a = sum_k  r.f - (r.axis)(f.axis)``  and
    ``b = sum_k  axis.(r x f)``

    where ``r``/``f`` are the moving/fixed points relative to the origin —
    the expanded perpendicular products, so no ``r_perp``/``f_perp``
    temporaries are materialised, and the triple product is summed
    componentwise to avoid the dispatch overhead of ``np.cross`` on small
    populations.  ``arctan2(b, a)`` is then the rotation angle about the
    axis minimising the summed squared pair distance (both terms ~0 means
    the gradient is pure noise and the member should not rotate).

    Parameters
    ----------
    points:
        ``(P, K, 3)`` moving points per member.
    targets:
        ``(K, 3)`` fixed target points shared by all members.
    origins:
        ``(P, 3)`` rotation-axis anchor per member.
    axes:
        ``(P, 3)`` unit rotation axis per member.
    """
    return _rotation_alignment_terms(_XP, points, targets, origins, axes)


def squared_bin_edges(max_value: float, n_bins: int) -> np.ndarray:
    """Squared edges of ``n_bins`` uniform bins over ``[0, max_value)``.

    Suitable for binning squared distances with ``np.searchsorted`` without
    ever taking a square root.
    """
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    if max_value <= 0.0:
        raise ValueError("max_value must be positive")
    edges = np.linspace(0.0, float(max_value), n_bins + 1)
    return edges * edges


@array_kernel("bin_squared_distances")
def _bin_squared_distances(xp, sq_distances, sq_edges):
    """Generic squared-distance binning (see wrapper)."""
    bins = xp.searchsorted(sq_edges, sq_distances, side="right") - 1
    return xp.clip(bins, 0, sq_edges.shape[0] - 1)


def bin_squared_distances(sq_distances: np.ndarray, sq_edges: np.ndarray) -> np.ndarray:
    """Bin squared distances against pre-squared edges.

    Values in ``[sq_edges[k], sq_edges[k+1])`` map to bin ``k``; values at
    or beyond the last edge map to the overflow bin ``len(sq_edges) - 1``.
    The single binning implementation shared by the knowledge-base builder
    and the scoring kernels, so histogram counts and runtime lookups can
    never disagree at bin edges.
    """
    return _bin_squared_distances(_XP, sq_distances, sq_edges)


@array_kernel("binned_gather_sum", static_argnums=(6,))
def _binned_gather_sum(
    xp, points, first, second, flat_tables, sq_edges, row_offsets, n_cols
):
    """Per-member table-gather sum of one population block.

    The fused gather-and-accumulate pass: the searchsorted output is
    turned into flat indices over the ravelled table (bin clamp, then
    per-pair row offsets) and gathered with ``take`` — same bin rule as
    :func:`bin_squared_distances`: values in ``[edge[k], edge[k+1])``
    land in bin ``k``, everything at or beyond the last edge in the
    overflow column ``n_cols - 1``.  ``n_cols`` is static under jit.
    """
    sq_d = _indexed_sq_distances(xp, points, points, first, second)
    indices = xp.searchsorted(sq_edges, sq_d, side="right") - 1
    indices = xp.clip(indices, 0, n_cols - 1) + row_offsets
    # Chunk-size-invariant row reduction (see indexed_penalty_sum).
    return xp.einsum("pk->p", xp.take(flat_tables, indices))


def binned_table_sum(
    points: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
    pair_tables: np.ndarray,
    sq_edges: np.ndarray,
    block_size: Optional[int] = None,
    kernels: Optional["KernelBundle"] = None,
) -> np.ndarray:
    """Per-member sum of table values selected by squared-distance binning.

    Per block, one fused gather-and-accumulate kernel: flat indices over
    the ravelled table, one ``take`` gather, one row reduction.  Nothing
    of shape ``(P, n_pairs)`` is ever materialised outside the block.
    Bin decisions, gathered values and the reduction are exactly those of
    the two-step ``searchsorted`` + row-lookup path (see
    ``tests/unit/test_pairwise.py``), so the fusion is bit-identical for
    every block size.

    Parameters
    ----------
    points:
        ``(P, A, 3)`` population point sets.
    first / second:
        Pair index arrays into the second axis of ``points``.
    pair_tables:
        ``(len(first), n_bins + 1)`` per-pair value rows.  The final column
        is the *overflow* bin: pairs at or beyond the last edge read it, so
        out-of-range pairs can be given a neutral (zero) value.
    sq_edges:
        ``(n_bins + 1,)`` squared bin edges from :func:`squared_bin_edges`.
    block_size:
        Population chunk size (see :func:`population_blocks`).
    kernels:
        Optional :class:`~repro.xp.dispatch.KernelBundle` the per-block
        gather runs through; ``None`` uses the numpy-bound kernels.
    """
    pop = points.shape[0]
    totals = np.zeros(pop, dtype=np.float64)
    if first.size == 0:
        return totals
    n_cols = pair_tables.shape[1]
    flat_tables = np.ascontiguousarray(pair_tables, dtype=np.float64).ravel()
    row_offsets = np.arange(first.size, dtype=np.intp) * n_cols
    for block in population_blocks(pop, block_size):
        if kernels is None:
            part = _binned_gather_sum(
                _XP, points[block], first, second,
                flat_tables, sq_edges, row_offsets, n_cols,
            )
        else:
            part = kernels.to_numpy(
                kernels.binned_gather_sum(
                    points[block], first, second,
                    flat_tables, sq_edges, row_offsets, n_cols,
                )
            )
        totals[block] = part
    return totals


#: The 27 cell offsets of a 3x3x3 neighbourhood.
_NEIGHBOUR_OFFSETS = np.array(
    [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)],
    dtype=np.int64,
)


class EnvironmentGrid:
    """Uniform cell list over a fixed set of environment atoms.

    The grid is built once (the environment never moves during sampling)
    with cell edge at least the query cutoff (normally equal; enlarged
    only when the cutoff is so small the cell count would exceed
    ``_MAX_CELLS``), so every atom within ``cutoff`` of a probe point lies
    in the probe's own cell or one of its 26 neighbours.  The cell array carries a two-cell empty border, which
    removes every bounds check from the query: probe cells are clipped into
    the border, neighbour offsets become plain integer adds on ravelled
    cell ids, and out-of-box probes simply read empty cells.

    Candidate pairs come out in the canonical *(probe, cell-sorted atom)*
    order — the same order :meth:`dense_pairs` enumerates — so pruned and
    dense accumulations see the shared pairs in the same sequence and their
    per-member totals are bit-identical (the pairs pruning drops lie beyond
    ``cutoff`` and contribute exact zeros).
    """

    #: Width of the empty border of cells around the occupied box.
    _PAD = 2

    #: Upper bound on the total (unpadded) cell count.  When the cutoff is
    #: tiny relative to the environment extent, the cell edge is enlarged
    #: to respect this bound — a coarser grid prunes less but stays
    #: correct, since the 27-cell guarantee only needs edge >= cutoff.
    _MAX_CELLS = 1 << 21

    def __init__(self, coords: np.ndarray, cutoff: float) -> None:
        coords = np.ascontiguousarray(coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError("coords must have shape (M, 3)")
        if not (cutoff > 0.0):
            raise ValueError("cutoff must be positive")
        self.coords = coords
        self.cutoff = float(cutoff)
        self.n_atoms = coords.shape[0]

        pad = self._PAD
        if self.n_atoms == 0:
            self._origin = np.zeros(3)
            self._dims = np.ones(3, dtype=np.int64)
            self._cell_edge = self.cutoff
            self._sorted_atoms = np.empty(0, dtype=np.int64)
            self._sorted_coords = np.empty((0, 3), dtype=np.float64)
            self._starts = np.zeros(2, dtype=np.int64)
            self._offset_ids = np.zeros(27, dtype=np.int64)
            return

        self._origin = coords.min(axis=0)
        extent = coords.max(axis=0) - self._origin
        edge = self.cutoff
        dims = np.floor(extent / edge).astype(np.int64) + 1
        while int(dims.prod()) > self._MAX_CELLS:
            edge *= 2.0
            dims = np.floor(extent / edge).astype(np.int64) + 1
        self._cell_edge = edge
        self._dims = dims
        padded = self._dims + 2 * pad
        cells = np.floor((coords - self._origin) / self._cell_edge).astype(np.int64)
        # Atoms on the far boundary land exactly on dims; pull them in.
        np.minimum(cells, self._dims - 1, out=cells)
        cell_ids = self._ravel_padded(cells + pad)
        # Stable sort keeps atoms ascending within each cell.
        order = np.argsort(cell_ids, kind="stable")
        self._sorted_atoms = order
        self._sorted_coords = coords[order]
        counts = np.bincount(cell_ids, minlength=int(padded.prod()))
        self._starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        # Ravelled-id deltas of the 27 neighbour cells.  The lexicographic
        # offset order is ascending in ravelled ids, which is what keeps a
        # probe's candidate runs sorted by cell without any extra sort.
        self._offset_ids = (
            _NEIGHBOUR_OFFSETS[:, 0] * padded[1] + _NEIGHBOUR_OFFSETS[:, 1]
        ) * padded[2] + _NEIGHBOUR_OFFSETS[:, 2]

    # ------------------------------------------------------------------
    # Cell arithmetic
    # ------------------------------------------------------------------

    def _ravel_padded(self, cells: np.ndarray) -> np.ndarray:
        padded = self._dims + 2 * self._PAD
        return (cells[..., 0] * padded[1] + cells[..., 1]) * padded[2] + cells[..., 2]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def candidate_pairs(self, probes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate (probe, atom) pairs from the cell neighbourhood.

        Returns two equally long index arrays in canonical (probe,
        cell-sorted atom) order.  The candidate set is a superset of all
        pairs closer than ``cutoff``; pairs it omits are guaranteed to be
        farther apart than ``cutoff``.
        """
        probes = np.asarray(probes, dtype=np.float64)
        n_probes = probes.shape[0]
        empty = np.empty(0, dtype=np.int64)
        if n_probes == 0 or self.n_atoms == 0:
            return empty, empty

        cells = np.floor((probes - self._origin) / self._cell_edge).astype(np.int64)
        # Clip far-out probes into the first border ring; border cells are
        # empty, and any probe clipped this way is farther than cutoff from
        # every atom, so spurious candidates only cost (exactly zero) work.
        np.clip(cells, -1, self._dims, out=cells)
        base_ids = self._ravel_padded(cells + self._PAD)
        # (Q, 27): bounded by the fixed 27-cell neighbourhood, not (P, P).
        # repro-lint: disable=REP005 -- constant 27-wide axis, not quadratic
        cell_ids = base_ids[:, None] + self._offset_ids[None, :]
        starts = self._starts[cell_ids]
        counts = self._starts[cell_ids + 1] - starts

        flat_counts = counts.ravel()
        total = int(flat_counts.sum())
        if total == 0:
            return empty, empty
        # Ragged gather: positions into the cell-sorted atom array.  Within
        # a probe the 27 runs have ascending cell ids, so the positions are
        # strictly increasing — already canonically ordered.
        bases = np.repeat(starts.ravel(), flat_counts)
        cum = np.cumsum(flat_counts) - flat_counts
        within = np.arange(total, dtype=np.int64) - np.repeat(cum, flat_counts)
        positions = bases + within
        probe_ids = np.repeat(
            np.arange(n_probes, dtype=np.int64), counts.sum(axis=1)
        )
        return probe_ids, positions

    def dense_pairs(self, n_probes: int) -> Tuple[np.ndarray, np.ndarray]:
        """All (probe, atom) pairs in the canonical (probe, cell-sorted) order."""
        probe_ids = np.repeat(np.arange(n_probes, dtype=np.int64), self.n_atoms)
        positions = np.tile(np.arange(self.n_atoms, dtype=np.int64), n_probes)
        return probe_ids, positions

    def candidate_neighbors(self, probes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate pairs as (probe index, *original* atom index).

        Like :meth:`candidate_pairs`, but with the cell-sorted positions
        mapped back to the indices of the coordinate array the grid was
        built from — the form consumers that index their own per-atom data
        (e.g. the batch-RMSD pruning) need.
        """
        probe_ids, positions = self.candidate_pairs(probes)
        return probe_ids, self._sorted_atoms[positions]

    def penalty_sum(
        self,
        probes: np.ndarray,
        sq_contacts: np.ndarray,
        block_size: Optional[int] = None,
        prune: bool = True,
    ) -> np.ndarray:
        """Per-member soft-sphere penalty of probes against the environment.

        Parameters
        ----------
        probes:
            ``(P, A, 3)`` probe positions (``A`` probe slots per member).
        sq_contacts:
            ``(A, M)`` squared contact radii between each probe slot and
            each environment atom.  The grid cutoff must be at least the
            largest corresponding metric contact, otherwise pruning could
            drop pairs with non-zero penalty.
        block_size:
            Population chunk size (see :func:`population_blocks`).
        prune:
            When false, every (probe, atom) pair is evaluated through the
            identical accumulation path — the dense reference the pruned
            result is bit-identical to.
        """
        probes = np.asarray(probes, dtype=np.float64)
        pop, slots = probes.shape[0], probes.shape[1]
        totals = np.zeros(pop, dtype=np.float64)
        if self.n_atoms == 0 or slots == 0:
            return totals
        for block in population_blocks(pop, block_size):
            chunk = probes[block]
            members = chunk.shape[0]
            flat = chunk.reshape(members * slots, 3)
            if prune:
                probe_ids, positions = self.candidate_pairs(flat)
            else:
                probe_ids, positions = self.dense_pairs(members * slots)
            if probe_ids.size == 0:
                continue
            diff = flat[probe_ids] - self._sorted_coords[positions]
            sq_d = np.einsum("ij,ij->i", diff, diff)
            sq_c = sq_contacts[probe_ids % slots, self._sorted_atoms[positions]]
            penalties = soft_sphere_penalty_sq(sq_d, sq_c)
            totals[block] = np.bincount(
                probe_ids // slots, weights=penalties, minlength=members
            )
        return totals

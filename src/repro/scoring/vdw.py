"""Soft-sphere van der Waals scoring function ([VDW], paper ref [8]).

Estimates the degree of steric clashes:

* among the loop backbone atoms themselves,
* between loop backbone atoms and side-chain centroid pseudo-atoms,
* among the centroids,
* and between all of the above and the atoms of the rest of the protein
  (the *environment*),

by summing a soft overlap penalty ``((r0^2 - d^2) / r0^2)^2`` over every
pair closer than its contact distance ``r0`` (a tolerance fraction of the
sum of radii).  This mirrors the atom-atom / atom-centroid /
centroid-centroid decomposition described in Section III.B of the paper.

All four terms run on the shared pairwise kernel engine
(:mod:`repro.scoring.pairwise`): the penalty is evaluated directly on
squared distances (the formula never needs the metric distance, so no
``sqrt`` is taken anywhere), the population is processed in cache-sized
chunks, and the environment term queries a uniform cell grid built once at
construction instead of materialising the full ``(P, n*4, M)`` pair block
— the temporary that made the seed's batched path slower than its scalar
one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import constants
from repro.loops.loop import LoopTarget
from repro.scoring.base import ScoringFunction
from repro.scoring.pairwise import (
    EnvironmentGrid,
    indexed_penalty_sum,
    soft_sphere_penalty_sq,
)

__all__ = ["SoftSphereVDW", "soft_sphere_penalty"]


def soft_sphere_penalty(distances: np.ndarray, contact: np.ndarray) -> np.ndarray:
    """Soft-sphere overlap penalty for distances below the contact radius.

    ``((r0^2 - d^2) / r0^2)^2`` for ``d < r0``, zero otherwise.  Fully
    vectorised; ``distances`` and ``contact`` must broadcast together.
    Thin metric-distance wrapper over
    :func:`repro.scoring.pairwise.soft_sphere_penalty_sq`, which applies
    the overlap mask before dividing so no invalid values are ever formed.
    """
    distances = np.asarray(distances, dtype=np.float64)
    contact = np.asarray(contact, dtype=np.float64)
    # Squaring would lose the sign of a (nonsensical) negative contact, so
    # zero those out first to preserve the documented "zero otherwise".
    sq_contact = np.where(contact > 0.0, contact * contact, 0.0)
    return soft_sphere_penalty_sq(distances * distances, sq_contact)


class SoftSphereVDW(ScoringFunction):
    """Soft-sphere clash score bound to one loop target."""

    name = "VDW"
    kernel_name = "EvalVDW"
    #: Registers per thread of the corresponding CUDA kernel (paper Table III).
    registers_per_thread = 32

    def __init__(
        self,
        target: LoopTarget,
        tolerance: float = constants.SOFT_SPHERE_TOLERANCE,
        min_residue_separation: int = 2,
        block_size: Optional[int] = None,
        env_pruning: bool = True,
    ) -> None:
        if not (0.0 < tolerance <= 1.0):
            raise ValueError("tolerance must be in (0, 1]")
        if min_residue_separation < 1:
            raise ValueError("min_residue_separation must be >= 1")
        self.target = target
        self.tolerance = tolerance
        self.min_residue_separation = min_residue_separation
        self.block_size = block_size
        self.env_pruning = env_pruning

        n = target.n_residues
        n_types = constants.BACKBONE_ATOMS_PER_RESIDUE

        # Radii of the loop backbone atoms, flattened residue-major.
        atom_radii = np.array(
            [constants.VDW_RADIUS[a] for a in constants.BACKBONE_ATOM_NAMES]
        )
        self._loop_radii = np.tile(atom_radii, n)  # (n*4,)
        self._loop_residue = np.repeat(np.arange(n), n_types)  # (n*4,)

        # Centroid parameters per residue.
        self._centroid_dist = target.centroid_distances  # (n,)
        self._centroid_radii = target.centroid_radii  # (n,)
        self._has_centroid = self._centroid_dist > 0.0

        # Intra-loop atom-atom pairs with sufficient residue separation.
        first, second = np.triu_indices(n * n_types, k=1)
        sep_ok = (
            np.abs(self._loop_residue[first] - self._loop_residue[second])
            >= self.min_residue_separation
        )
        self._aa_first = first[sep_ok]
        self._aa_second = second[sep_ok]
        aa_contact = self.tolerance * (
            self._loop_radii[self._aa_first] + self._loop_radii[self._aa_second]
        )
        self._aa_sq_contact = aa_contact * aa_contact

        # Intra-loop centroid-centroid pairs.
        cf, cs = np.triu_indices(n, k=1)
        sep_ok = (cs - cf) >= self.min_residue_separation
        both = self._has_centroid[cf] & self._has_centroid[cs]
        keep = sep_ok & both
        self._cc_first = cf[keep]
        self._cc_second = cs[keep]
        cc_contact = self.tolerance * (
            self._centroid_radii[self._cc_first] + self._centroid_radii[self._cc_second]
        )
        self._cc_sq_contact = cc_contact * cc_contact

        # Intra-loop atom-centroid pairs.
        atom_idx, cen_idx = np.meshgrid(
            np.arange(n * n_types), np.arange(n), indexing="ij"
        )
        atom_idx = atom_idx.ravel()
        cen_idx = cen_idx.ravel()
        sep_ok = (
            np.abs(self._loop_residue[atom_idx] - cen_idx)
            >= self.min_residue_separation
        )
        keep = sep_ok & self._has_centroid[cen_idx]
        self._ac_atom = atom_idx[keep]
        self._ac_cen = cen_idx[keep]
        ac_contact = self.tolerance * (
            self._loop_radii[self._ac_atom] + self._centroid_radii[self._ac_cen]
        )
        self._ac_sq_contact = ac_contact * ac_contact

        # Environment atoms (coordinates fixed for the whole run).
        self._env_coords = target.environment_coords  # (M, 3)
        self._env_radii = target.environment_radii  # (M,)
        # Bounded (n*4, M) contact table (loop atoms x environment), built
        # once at init — not a per-iteration (P, P) materialisation.
        env_atom_contact = self.tolerance * (
            # repro-lint: disable=REP005 -- bounded once-per-run init table
            self._loop_radii[:, None] + self._env_radii[None, :]
        )  # (n*4, M)
        env_cen_contact = self.tolerance * (
            # repro-lint: disable=REP005 -- (n, M) contact table, same bound.
            self._centroid_radii[:, None] + self._env_radii[None, :]
        )  # (n, M)
        env_cen_contact[~self._has_centroid, :] = 0.0
        self._env_atom_sq_contact = env_atom_contact * env_atom_contact
        self._env_cen_sq_contact = env_cen_contact * env_cen_contact

        # Uniform cell grid over the fixed environment, built once.  The
        # cutoff is the largest contact radius any probe (atom or centroid)
        # can have against any environment atom, so cell pruning can never
        # drop a pair with non-zero penalty.
        self._env_grid: Optional[EnvironmentGrid] = None
        if self._env_coords.size:
            cutoff = max(
                float(env_atom_contact.max()) if env_atom_contact.size else 0.0,
                float(env_cen_contact.max()) if env_cen_contact.size else 0.0,
            )
            if cutoff > 0.0:
                self._env_grid = EnvironmentGrid(self._env_coords, cutoff)

    # ------------------------------------------------------------------
    # Centroid construction
    # ------------------------------------------------------------------

    def _centroids(self, coords: np.ndarray) -> np.ndarray:
        """Side-chain centroid positions for coords of shape ``(..., n, 4, 3)``."""
        n_atoms = coords[..., 0, :]
        ca = coords[..., 1, :]
        c_atoms = coords[..., 2, :]
        away = ca - 0.5 * (n_atoms + c_atoms)
        norms = np.linalg.norm(away, axis=-1, keepdims=True)
        norms = np.where(norms < 1e-9, 1.0, norms)
        away = away / norms
        return ca + away * self._centroid_dist[..., :, None]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, coords: np.ndarray, torsions: np.ndarray) -> float:
        """Total clash penalty of one conformation."""
        coords = np.asarray(coords, dtype=np.float64)
        return float(self.evaluate_batch(coords[None], None)[0])

    def evaluate_batch(self, coords: np.ndarray, torsions: np.ndarray) -> np.ndarray:
        """Total clash penalty of every population member.

        All four terms delegate their population chunking to the shared
        engine helpers; only the centroid construction runs unchunked (its
        output is a small ``(P, n, 3)`` array reused by three terms).
        """
        coords = np.asarray(coords, dtype=np.float64)
        pop = coords.shape[0]
        flat = coords.reshape(pop, -1, 3)  # (P, n*4, 3)
        centroids = self._centroids(coords)  # (P, n, 3)

        # Loop atom - loop atom.
        total = indexed_penalty_sum(
            flat, flat, self._aa_first, self._aa_second,
            self._aa_sq_contact, self.block_size, kernels=self.kernels,
        )
        # Centroid - centroid.
        total += indexed_penalty_sum(
            centroids, centroids, self._cc_first, self._cc_second,
            self._cc_sq_contact, self.block_size, kernels=self.kernels,
        )
        # Loop atom - centroid.
        total += indexed_penalty_sum(
            flat, centroids, self._ac_atom, self._ac_cen,
            self._ac_sq_contact, self.block_size, kernels=self.kernels,
        )

        # Loop atoms / centroids against the protein environment, pruned
        # through the cell grid to the O(neighbours) candidate pairs.  The
        # ragged cell-list gather is host-side by design (data-dependent
        # shapes don't jit), so this term always runs on numpy.
        if self._env_grid is not None:
            total += self._env_grid.penalty_sum(
                flat, self._env_atom_sq_contact, self.block_size,
                prune=self.env_pruning,
            )
            total += self._env_grid.penalty_sum(
                centroids, self._env_cen_sq_contact, self.block_size,
                prune=self.env_pruning,
            )

        return total

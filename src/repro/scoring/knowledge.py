"""Knowledge-base tables for the TRIPLET and DIST potentials.

The paper's knowledge-based scoring functions are ``-log`` frequency tables
pre-computed from a structural database and loaded into GPU texture memory
at program start.  This module builds the equivalent tables from the
synthetic loop library (:mod:`repro.loops.library`):

* **Triplet tables** — for each of the 27 residue-type triplets
  (GENERIC/GLY/PRO for the previous, current and next residue), a 2-D
  histogram over (phi, psi) bins of the central residue.
* **Distance tables** — for each backbone atom-type pair (N/CA/C/O, 10
  unordered pairs) and sequence-separation class, a histogram over
  pair-distance bins, normalised by the pooled reference distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations_with_replacement
from typing import Dict, Tuple

import numpy as np

from repro import constants
from repro.loops.library import LoopLibrary, default_library
from repro.protein.residue import ResidueType, residue_type
from repro.scoring.pairwise import bin_squared_distances, squared_bin_edges

__all__ = [
    "KnowledgeBase",
    "build_knowledge_base",
    "default_knowledge_base",
    "TORSION_BINS",
    "DISTANCE_BINS",
    "DISTANCE_MAX",
    "DISTANCE_SQ_EDGES",
    "SEPARATION_CLASSES",
    "atom_pair_index",
    "separation_class",
    "triplet_class_index",
    "distance_bin",
    "distance_bin_sq",
]

#: Number of bins per torsion axis (15-degree bins).
TORSION_BINS: int = 24

#: Number of distance bins for the pairwise potential.
DISTANCE_BINS: int = 30

#: Maximum distance (A) covered by the pairwise histograms.
DISTANCE_MAX: float = 15.0

#: Squared edges of the distance histogram bins (for sqrt-free binning).
DISTANCE_SQ_EDGES: np.ndarray = squared_bin_edges(DISTANCE_MAX, DISTANCE_BINS)

#: Sequence-separation classes: |i-j| == 1, == 2, == 3, >= 4.
SEPARATION_CLASSES: int = 4

#: Pseudo-count added to every histogram bin before normalisation.
_PSEUDOCOUNT: float = 0.5

_N_ATOM_TYPES = len(constants.BACKBONE_ATOM_NAMES)
_PAIRS = list(combinations_with_replacement(range(_N_ATOM_TYPES), 2))
_PAIR_LOOKUP: Dict[Tuple[int, int], int] = {}
for _idx, (_a, _b) in enumerate(_PAIRS):
    _PAIR_LOOKUP[(_a, _b)] = _idx
    _PAIR_LOOKUP[(_b, _a)] = _idx

#: Number of unordered backbone atom-type pairs.
N_ATOM_PAIRS: int = len(_PAIRS)

#: Number of residue-type triplet classes (3 types ** 3 positions).
N_TRIPLET_CLASSES: int = len(ResidueType) ** 3


def atom_pair_index(a: int, b: int) -> int:
    """Index of the unordered backbone atom-type pair (N/CA/C/O indices)."""
    return _PAIR_LOOKUP[(a, b)]


def separation_class(sep: int) -> int:
    """Sequence-separation class for |i - j| = ``sep`` residues."""
    if sep < 1:
        raise ValueError("separation must be >= 1")
    return min(sep, SEPARATION_CLASSES) - 1


def triplet_class_index(prev_aa: str, cur_aa: str, next_aa: str) -> int:
    """Class index of a residue triplet from one-letter codes."""
    p = residue_type(prev_aa).value
    c = residue_type(cur_aa).value
    n = residue_type(next_aa).value
    base = len(ResidueType)
    return (p * base + c) * base + n


def torsion_bin(angles: np.ndarray) -> np.ndarray:
    """Map angles (radians, any range) to torsion histogram bins [0, TORSION_BINS)."""
    angles = np.asarray(angles, dtype=np.float64)
    frac = (angles + np.pi) / (2.0 * np.pi)
    bins = np.floor(frac * TORSION_BINS).astype(np.int64)
    return np.clip(bins, 0, TORSION_BINS - 1)


def distance_bin_sq(sq_distances: np.ndarray) -> np.ndarray:
    """Map *squared* distances (A^2) to distance histogram bins.

    In-range pairs map to ``[0, DISTANCE_BINS)``; pairs at or beyond
    ``DISTANCE_MAX`` map to the overflow bin ``DISTANCE_BINS``.  The tables
    carry no statistics past their last edge, so out-of-range pairs must be
    treated as neutral rather than silently scored as if they sat at the
    table edge.

    .. warning::
       The overflow bin is one past the last axis of
       ``KnowledgeBase.distance_neg_log``: callers indexing a table with
       these bins must either mask ``bins >= DISTANCE_BINS`` (as
       :func:`build_knowledge_base` does) or index a zero-padded table (as
       :class:`~repro.scoring.distance.DistanceScore` does).
    """
    sq_distances = np.asarray(sq_distances, dtype=np.float64)
    return bin_squared_distances(sq_distances, DISTANCE_SQ_EDGES)


def distance_bin(distances: np.ndarray) -> np.ndarray:
    """Map distances (A) to bins; out-of-range maps to ``DISTANCE_BINS``."""
    distances = np.asarray(distances, dtype=np.float64)
    return distance_bin_sq(distances * distances)


@dataclass(frozen=True)
class KnowledgeBase:
    """Pre-computed ``-log`` probability tables for TRIPLET and DIST.

    Attributes
    ----------
    triplet_neg_log:
        ``(N_TRIPLET_CLASSES, TORSION_BINS, TORSION_BINS)`` negative log
        probability of a (phi, psi) bin given the triplet class.
    distance_neg_log:
        ``(N_ATOM_PAIRS, SEPARATION_CLASSES, DISTANCE_BINS)`` negative log
        ratio of the observed pair-distance distribution to the pooled
        reference distribution.
    library_size:
        Number of loops in the library the tables were derived from.
    """

    triplet_neg_log: np.ndarray
    distance_neg_log: np.ndarray
    library_size: int

    def __post_init__(self) -> None:
        expected_t = (N_TRIPLET_CLASSES, TORSION_BINS, TORSION_BINS)
        expected_d = (N_ATOM_PAIRS, SEPARATION_CLASSES, DISTANCE_BINS)
        if self.triplet_neg_log.shape != expected_t:
            raise ValueError(f"triplet table shape {self.triplet_neg_log.shape} != {expected_t}")
        if self.distance_neg_log.shape != expected_d:
            raise ValueError(f"distance table shape {self.distance_neg_log.shape} != {expected_d}")

    @property
    def nbytes(self) -> int:
        """Total size of the tables in bytes (what the paper keeps in texture memory)."""
        return self.triplet_neg_log.nbytes + self.distance_neg_log.nbytes


def build_knowledge_base(library: LoopLibrary) -> KnowledgeBase:
    """Derive the TRIPLET and DIST tables from a loop library."""
    if len(library) == 0:
        raise ValueError("cannot build a knowledge base from an empty library")

    # ------------------------------------------------------------------
    # Triplet torsion histograms.
    # ------------------------------------------------------------------
    triplet_counts = np.full(
        (N_TRIPLET_CLASSES, TORSION_BINS, TORSION_BINS), _PSEUDOCOUNT, dtype=np.float64
    )
    for record in library:
        seq = record.sequence
        torsions = record.torsions
        n = len(seq)
        for i in range(n):
            prev_aa = seq[i - 1] if i > 0 else seq[i]
            next_aa = seq[i + 1] if i + 1 < n else seq[i]
            cls = triplet_class_index(prev_aa, seq[i], next_aa)
            pb = int(torsion_bin(np.array([torsions[2 * i]]))[0])
            sb = int(torsion_bin(np.array([torsions[2 * i + 1]]))[0])
            triplet_counts[cls, pb, sb] += 1.0

    triplet_prob = triplet_counts / triplet_counts.sum(axis=(1, 2), keepdims=True)
    triplet_neg_log = -np.log(triplet_prob)

    # ------------------------------------------------------------------
    # Pairwise distance histograms.
    # ------------------------------------------------------------------
    dist_counts = np.full(
        (N_ATOM_PAIRS, SEPARATION_CLASSES, DISTANCE_BINS), _PSEUDOCOUNT, dtype=np.float64
    )
    reference_counts = np.full(DISTANCE_BINS, _PSEUDOCOUNT, dtype=np.float64)

    for record in library:
        coords = record.coords  # (n, 4, 3)
        n = coords.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                sep_cls = separation_class(j - i)
                diff = coords[i][:, None, :] - coords[j][None, :, :]
                # Bin the squared distances directly so histogram building
                # and the runtime kernels share one edge-exact binning.
                bins = distance_bin_sq(np.sum(diff * diff, axis=-1))  # (4, 4)
                for a in range(_N_ATOM_TYPES):
                    for b in range(_N_ATOM_TYPES):
                        if bins[a, b] >= DISTANCE_BINS:
                            continue  # beyond the table edge: no statistics
                        pair = atom_pair_index(a, b)
                        dist_counts[pair, sep_cls, bins[a, b]] += 1.0
                        reference_counts[bins[a, b]] += 1.0

    dist_prob = dist_counts / dist_counts.sum(axis=2, keepdims=True)
    reference_prob = reference_counts / reference_counts.sum()
    distance_neg_log = -np.log(dist_prob / reference_prob[None, None, :])

    return KnowledgeBase(
        triplet_neg_log=triplet_neg_log,
        distance_neg_log=distance_neg_log,
        library_size=len(library),
    )


@lru_cache(maxsize=2)
def default_knowledge_base(seed: int = 2010, n_loops: int = 400) -> KnowledgeBase:
    """The knowledge base built from the default synthetic library (cached)."""
    return build_knowledge_base(default_library(seed=seed, n_loops=n_loops))

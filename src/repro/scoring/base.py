"""Scoring-function interface shared by the three potentials.

Every scoring function is bound to a :class:`~repro.loops.loop.LoopTarget`
at construction time (so environment atoms, sequences and lookup indices are
precomputed once) and then exposes two evaluation paths:

* :meth:`ScoringFunction.evaluate` — score a single conformation; this is
  what the paper's CPU implementation runs per population member.
* :meth:`ScoringFunction.evaluate_batch` — score the whole population in a
  single vectorised call; this is the simulated analogue of the paper's GPU
  kernel for that scoring function.

Lower scores are always better.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.scoring.pairwise import resolve_block_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.xp.dispatch import KernelBundle

__all__ = ["ScoringFunction", "MultiScore"]


class ScoringFunction(abc.ABC):
    """Abstract base class for backbone scoring functions.

    Attributes
    ----------
    name:
        Short identifier (``"VDW"``, ``"TRIPLET"``, ``"DIST"``).
    kernel_name:
        The GPU kernel label the paper uses for this evaluation
        (``"EvalVDW"``, ``"EvalTRIP"``, ``"EvalDIST"``), used by the
        profiler to report Table II-style breakdowns.
    registers_per_thread:
        Registers the corresponding CUDA kernel needs per thread (Table III),
        used by the occupancy model of the simulated device.
    """

    name: str = "SCORE"
    kernel_name: str = "EvalScore"
    registers_per_thread: int = 32

    #: Optional :class:`~repro.xp.dispatch.KernelBundle` the batched
    #: engine calls route through (``None`` = the numpy default, which is
    #: bit-identical).  Set once at stack-assembly time via
    #: :meth:`use_kernels`; scorers whose batched path is pure table
    #: lookup simply ignore it.
    kernels: Optional["KernelBundle"] = None

    def use_kernels(self, kernels: Optional["KernelBundle"]) -> None:
        """Select the kernel bundle batched evaluation runs through.

        Called by backends that bind the :mod:`repro.xp` facade to a
        non-default namespace (e.g. the jax tier) when they assemble
        their scoring stack.  Passing ``None`` restores the numpy path.
        """
        self.kernels = kernels

    @abc.abstractmethod
    def evaluate(self, coords: np.ndarray, torsions: np.ndarray) -> float:
        """Score one conformation.

        Parameters
        ----------
        coords:
            ``(n, 4, 3)`` loop backbone coordinates.
        torsions:
            ``(2n,)`` torsion vector of the same conformation.
        """

    @abc.abstractmethod
    def evaluate_batch(self, coords: np.ndarray, torsions: np.ndarray) -> np.ndarray:
        """Score a population.

        Parameters
        ----------
        coords:
            ``(P, n, 4, 3)`` population coordinates.
        torsions:
            ``(P, 2n)`` population torsions.

        Returns
        -------
        numpy.ndarray
            ``(P,)`` scores (lower is better).
        """

    def resolved_block_size(self, population_size: int) -> Optional[int]:
        """Population chunk size :meth:`evaluate_batch` will use, or ``None``.

        This is the single source of truth the backends read for launch
        accounting.  The default implementation mirrors the engine
        scorers: a ``block_size`` attribute is resolved exactly the way
        :func:`repro.scoring.pairwise.population_blocks` will resolve it;
        scorers without one report ``None`` (no chunking).  Scorers with a
        custom chunk policy should override this so profiling stays
        truthful.
        """
        if not hasattr(self, "block_size"):
            return None
        return resolve_block_size(self.block_size, population_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(name={self.name!r})"


class MultiScore:
    """An ordered collection of scoring functions evaluated together.

    The MOSCEM sampler treats the output columns as the axes of the
    multi-scoring-function space in which Pareto dominance is computed.
    """

    def __init__(self, functions: Sequence[ScoringFunction]) -> None:
        if not functions:
            raise ValueError("MultiScore requires at least one scoring function")
        self.functions: List[ScoringFunction] = list(functions)

    @property
    def names(self) -> List[str]:
        """Names of the member scoring functions, in evaluation order."""
        return [fn.name for fn in self.functions]

    def __len__(self) -> int:
        return len(self.functions)

    def __iter__(self):
        return iter(self.functions)

    def evaluate(self, coords: np.ndarray, torsions: np.ndarray) -> np.ndarray:
        """Score one conformation under every function: shape ``(K,)``."""
        return np.array(
            [fn.evaluate(coords, torsions) for fn in self.functions], dtype=np.float64
        )

    def evaluate_batch(self, coords: np.ndarray, torsions: np.ndarray) -> np.ndarray:
        """Score a population under every function: shape ``(P, K)``."""
        columns = [fn.evaluate_batch(coords, torsions) for fn in self.functions]
        return np.stack(columns, axis=1)

"""Loop target definition: the fixed context within which a loop is rebuilt.

A :class:`LoopTarget` packages everything the sampler and the scoring
functions need about one loop-modelling problem:

* the loop sequence and length,
* the fixed N-terminal anchor atoms (``C_prev``, ``N_1``, ``CA_1``),
* the fixed C-terminal anchor atoms (``N_{n+1}``, ``CA_{n+1}``, ``C_{n+1}``)
  that the rebuilt loop must reach (the loop-closure condition),
* the native loop conformation (for RMSD evaluation),
* the surrounding protein environment as an excluded-volume point cloud
  (for the soft-sphere VDW score).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro import constants
from repro.geometry.nerf import build_backbone, build_backbone_batch
from repro.geometry.rmsd import coordinate_rmsd, coordinate_rmsd_batch
from repro.protein.residue import Residue, validate_sequence

__all__ = ["LoopTarget", "canonical_n_anchor"]


def canonical_n_anchor() -> np.ndarray:
    """The canonical N-terminal anchor frame used by synthetic targets.

    ``C_prev`` sits at the origin, ``N_1`` along +x at the peptide-bond
    length, and ``CA_1`` placed with the ideal C-N-CA angle, tilted slightly
    out of the xy-plane so that the frame is non-degenerate.
    """
    c_prev = np.zeros(3)
    n1 = np.array([constants.BOND_C_N, 0.0, 0.0])
    direction = np.array(
        [-np.cos(constants.ANGLE_C_N_CA), np.sin(constants.ANGLE_C_N_CA), 0.35]
    )
    direction = direction / np.linalg.norm(direction)
    ca1 = n1 + constants.BOND_N_CA * direction
    return np.stack([c_prev, n1, ca1])


@dataclass
class LoopTarget:
    """One loop-modelling problem instance.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"1cex(40:51)"``.
    pdb_id:
        Four-character parent-protein identifier.
    start_res / end_res:
        Residue numbers of the loop within the parent protein (inclusive),
        following the paper's ``pdb(start:end)`` notation.
    sequence:
        One-letter loop sequence (length ``n``).
    n_anchor:
        ``(3, 3)`` fixed coordinates of ``C_prev``, ``N_1``, ``CA_1``.
    c_anchor:
        ``(3, 3)`` fixed coordinates of ``N_{n+1}``, ``CA_{n+1}``, ``C_{n+1}``
        — the closure targets.
    end_phi:
        Fixed phi torsion of the first C-terminal anchor residue.
    native_torsions:
        ``(2n,)`` native torsion vector (radians).
    native_coords:
        ``(n, 4, 3)`` native loop backbone coordinates.
    environment_coords / environment_radii:
        ``(M, 3)`` / ``(M,)`` excluded-volume atoms of the rest of the protein.
    buried:
        Whether the loop is deeply buried (dense environment); the paper's
        single failure case, 1xyz(813:824), is of this kind.
    """

    name: str
    pdb_id: str
    start_res: int
    end_res: int
    sequence: str
    n_anchor: np.ndarray
    c_anchor: np.ndarray
    end_phi: float
    native_torsions: np.ndarray
    native_coords: np.ndarray
    environment_coords: np.ndarray
    environment_radii: np.ndarray
    buried: bool = False

    def __post_init__(self) -> None:
        self.sequence = validate_sequence(self.sequence)
        n = len(self.sequence)
        self.n_anchor = np.asarray(self.n_anchor, dtype=np.float64)
        self.c_anchor = np.asarray(self.c_anchor, dtype=np.float64)
        self.native_torsions = np.asarray(self.native_torsions, dtype=np.float64)
        self.native_coords = np.asarray(self.native_coords, dtype=np.float64)
        self.environment_coords = np.asarray(self.environment_coords, dtype=np.float64)
        self.environment_radii = np.asarray(self.environment_radii, dtype=np.float64)

        if self.n_anchor.shape != (3, 3):
            raise ValueError("n_anchor must have shape (3, 3)")
        if self.c_anchor.shape != (3, 3):
            raise ValueError("c_anchor must have shape (3, 3)")
        if self.native_torsions.shape != (2 * n,):
            raise ValueError(
                f"native_torsions must have shape ({2 * n},), got "
                f"{self.native_torsions.shape}"
            )
        if self.native_coords.shape != (n, constants.BACKBONE_ATOMS_PER_RESIDUE, 3):
            raise ValueError("native_coords shape mismatch with sequence length")
        if self.environment_coords.ndim != 2 or self.environment_coords.shape[1] != 3:
            raise ValueError("environment_coords must have shape (M, 3)")
        if self.environment_radii.shape != (self.environment_coords.shape[0],):
            raise ValueError("environment_radii must match environment_coords")
        if self.end_res - self.start_res + 1 != n:
            raise ValueError("start_res/end_res span does not match sequence length")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def n_residues(self) -> int:
        """Loop length in residues."""
        return len(self.sequence)

    @property
    def n_torsions(self) -> int:
        """Number of sampled torsion angles (2 per residue)."""
        return 2 * self.n_residues

    @property
    def residues(self) -> Tuple[Residue, ...]:
        """Residue objects of the loop."""
        return tuple(
            Residue(index=self.start_res + i, aa=aa)
            for i, aa in enumerate(self.sequence)
        )

    @property
    def centroid_distances(self) -> np.ndarray:
        """Per-residue CA-to-centroid distances (A)."""
        return np.array([constants.CENTROID_DISTANCE[aa] for aa in self.sequence])

    @property
    def centroid_radii(self) -> np.ndarray:
        """Per-residue side-chain centroid radii (A)."""
        return np.array([constants.CENTROID_RADIUS[aa] for aa in self.sequence])

    # ------------------------------------------------------------------
    # Building and measuring conformations
    # ------------------------------------------------------------------

    def build(self, torsions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Build one conformation: ``(n, 4, 3)`` coords plus closure atoms."""
        return build_backbone(torsions, self.n_anchor, self.end_phi)

    def build_batch(self, torsions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Build a population: ``(P, n, 4, 3)`` coords plus ``(P, 3, 3)`` closure."""
        return build_backbone_batch(torsions, self.n_anchor, self.end_phi)

    def rmsd_to_native(self, coords: np.ndarray) -> float:
        """Backbone RMSD (no superposition) of one conformation to the native."""
        return coordinate_rmsd(coords, self.native_coords)

    def rmsd_to_native_batch(self, coords: np.ndarray) -> np.ndarray:
        """Backbone RMSD of every population member to the native."""
        return coordinate_rmsd_batch(coords, self.native_coords)

    def closure_error(self, closure: np.ndarray) -> float:
        """RMSD between built closure atoms and the fixed C-terminal anchor."""
        return coordinate_rmsd(closure, self.c_anchor)

    def closure_error_batch(self, closure: np.ndarray) -> np.ndarray:
        """Batched closure error."""
        return coordinate_rmsd_batch(closure, self.c_anchor)

    def native_check(self, tolerance: float = 1e-6) -> bool:
        """Verify that the stored native torsions rebuild the native loop.

        Returns ``True`` when rebuilding the native torsion vector reproduces
        both the native coordinates and the closure targets within
        ``tolerance`` — i.e. the problem is self-consistent and a perfect
        solution exists.
        """
        coords, closure = self.build(self.native_torsions)
        return (
            self.rmsd_to_native(coords) < tolerance
            and self.closure_error(closure) < tolerance
        )

    def describe(self) -> str:
        """One-line summary used by the experiment drivers."""
        return (
            f"{self.name}: {self.n_residues} residues, "
            f"{self.environment_coords.shape[0]} environment atoms"
            f"{' (buried)' if self.buried else ''}"
        )

"""Synthetic loop library.

The TRIPLET and DIST potentials of the paper are knowledge-based: they are
``-log`` frequency tables derived from a large library of observed protein
loops (refs [6] and [7]).  That library is not available offline, so this
module generates a synthetic stand-in: a collection of loops whose torsions
are drawn from the Ramachandran-basin model with realistic per-residue-type
statistics.  The knowledge-base builder (:mod:`repro.scoring.knowledge`)
derives its histograms from these records exactly as the original potentials
were derived from the PDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.geometry.nerf import build_backbone
from repro.loops.loop import canonical_n_anchor
from repro.loops.ramachandran import RamachandranModel
from repro.utils.rng import spawn_rng

__all__ = ["LoopRecord", "LoopLibrary", "default_library"]


@dataclass(frozen=True)
class LoopRecord:
    """One library entry: a loop sequence with its torsions and coordinates."""

    sequence: str
    torsions: np.ndarray
    coords: np.ndarray

    @property
    def length(self) -> int:
        """Number of residues in the loop."""
        return len(self.sequence)


@dataclass
class LoopLibrary:
    """A collection of loop records with query helpers.

    Parameters
    ----------
    records:
        The loop records.
    seed:
        The seed the library was generated with (``None`` for hand-built
        libraries), recorded for provenance.
    """

    records: List[LoopRecord] = field(default_factory=list)
    seed: Optional[int] = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LoopRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> LoopRecord:
        return self.records[index]

    @classmethod
    def generate(
        cls,
        n_loops: int = 400,
        lengths: Sequence[int] = (8, 10, 11, 12, 14),
        seed: int = 2010,
        smoothness: float = 0.4,
        alphabet: str = "ACDEFGHIKLMNPQRSTVWY",
    ) -> "LoopLibrary":
        """Generate a synthetic library of ``n_loops`` loops.

        Each loop gets a random sequence over ``alphabet`` (glycine and
        proline therefore appear with realistic ~5% frequency each), a
        torsion vector sampled from the Ramachandran model, and backbone
        coordinates built in the canonical anchor frame.
        """
        if n_loops <= 0:
            raise ValueError("n_loops must be positive")
        rng = spawn_rng(seed, 0)
        model = RamachandranModel(smoothness=smoothness)
        anchor = canonical_n_anchor()
        records: List[LoopRecord] = []
        lengths = list(lengths)
        for i in range(n_loops):
            length = int(lengths[i % len(lengths)])
            seq = "".join(rng.choice(list(alphabet), size=length))
            torsions = model.sample_sequence(seq, rng)
            end_phi = float(rng.uniform(-np.pi, np.pi))
            coords, _closure = build_backbone(torsions, anchor, end_phi)
            records.append(LoopRecord(sequence=seq, torsions=torsions, coords=coords))
        return cls(records=records, seed=seed)

    def filter_length(self, min_length: int = 0, max_length: int = 10 ** 9) -> "LoopLibrary":
        """Return the sub-library of loops whose length is in the given range."""
        kept = [r for r in self.records if min_length <= r.length <= max_length]
        return LoopLibrary(records=kept, seed=self.seed)

    def sequences(self) -> List[str]:
        """All sequences in the library."""
        return [r.sequence for r in self.records]

    def torsion_pairs(self) -> np.ndarray:
        """All (phi, psi) pairs across the library, shape ``(total_residues, 2)``."""
        pairs: List[np.ndarray] = []
        for rec in self.records:
            pairs.append(rec.torsions.reshape(-1, 2))
        if not pairs:
            return np.zeros((0, 2))
        return np.concatenate(pairs)

    def residue_count(self) -> int:
        """Total number of residues across all records."""
        return sum(r.length for r in self.records)


@lru_cache(maxsize=4)
def default_library(seed: int = 2010, n_loops: int = 400) -> LoopLibrary:
    """The default synthetic library, cached per (seed, size)."""
    return LoopLibrary.generate(n_loops=n_loops, seed=seed)

"""The 53 long-loop benchmark targets.

The paper evaluates on the 53 targets with 10+ residues from the filtered
Jacobson loop-decoy benchmark.  The original structures are not available
offline, so each target here is a *synthetic stand-in* generated
deterministically from the target name: a native loop conformation sampled
from the Ramachandran model, embedded in a packed pseudo-atom environment
(see DESIGN.md Section 2 for the substitution argument).

The registry keeps:

* the same size distribution as the paper's Table IV
  (27 ten-residue, 17 eleven-residue, 9 twelve-residue targets),
* all the targets named in the paper — 1cex(40:51), 1akz(181:192),
  1xyz(813:824), 1ixh(160:171), 153l(98:109), 1dim(213:224), 3pte(91:101)
  and 5pti(7:17),
* the special character of 1xyz(813:824): it is generated *buried* (dense
  environment), so it remains the hard case on which sampling struggles.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import constants
from repro.geometry.nerf import build_backbone
from repro.loops.loop import LoopTarget, canonical_n_anchor
from repro.loops.ramachandran import RamachandranModel
from repro.utils.rng import spawn_rng

__all__ = [
    "BenchmarkTarget",
    "benchmark_registry",
    "get_target",
    "make_target",
    "paper_named_targets",
    "registry_summary",
]


@dataclass(frozen=True)
class BenchmarkTarget:
    """Registry entry describing one benchmark loop (before generation)."""

    pdb_id: str
    start_res: int
    end_res: int
    buried: bool = False

    @property
    def length(self) -> int:
        """Loop length in residues."""
        return self.end_res - self.start_res + 1

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``"1cex(40:51)"``."""
        return f"{self.pdb_id}({self.start_res}:{self.end_res})"


# ---------------------------------------------------------------------------
# Registry: 27 x 10-residue, 17 x 11-residue, 9 x 12-residue = 53 targets.
# The twelve-residue set contains the six loops of Table I plus three more;
# 3pte(91:101) and 5pti(7:17) are the named eleven-residue loops of Figs 5-6.
# ---------------------------------------------------------------------------

_TWELVE_RESIDUE: Tuple[BenchmarkTarget, ...] = (
    BenchmarkTarget("1cex", 40, 51),
    BenchmarkTarget("1akz", 181, 192),
    BenchmarkTarget("1xyz", 813, 824, buried=True),
    BenchmarkTarget("1ixh", 160, 171),
    BenchmarkTarget("153l", 98, 109),
    BenchmarkTarget("1dim", 213, 224),
    BenchmarkTarget("1arb", 182, 193),
    BenchmarkTarget("1bhe", 121, 132),
    BenchmarkTarget("2pia", 28, 39),
)

_ELEVEN_RESIDUE: Tuple[BenchmarkTarget, ...] = (
    BenchmarkTarget("3pte", 91, 101),
    BenchmarkTarget("5pti", 7, 17),
    BenchmarkTarget("1a8d", 155, 165),
    BenchmarkTarget("1bn8", 296, 306),
    BenchmarkTarget("1c5e", 80, 90),
    BenchmarkTarget("1cb0", 129, 139),
    BenchmarkTarget("1cnv", 110, 120),
    BenchmarkTarget("1cs6", 373, 383),
    BenchmarkTarget("1dqz", 209, 219),
    BenchmarkTarget("1exm", 159, 169),
    BenchmarkTarget("1f46", 64, 74),
    BenchmarkTarget("1i7p", 63, 73),
    BenchmarkTarget("1m3s", 68, 78),
    BenchmarkTarget("1ms9", 529, 539),
    BenchmarkTarget("1my7", 254, 264),
    BenchmarkTarget("1oth", 69, 79),
    BenchmarkTarget("1oyc", 203, 213),
)

_TEN_RESIDUE: Tuple[BenchmarkTarget, ...] = (
    BenchmarkTarget("1qlw", 31, 40),
    BenchmarkTarget("1t1d", 127, 136),
    BenchmarkTarget("1eco", 35, 44),
    BenchmarkTarget("1ede", 150, 159),
    BenchmarkTarget("1ezm", 122, 131),
    BenchmarkTarget("1fkb", 41, 50),
    BenchmarkTarget("1hfc", 155, 164),
    BenchmarkTarget("1iab", 27, 36),
    BenchmarkTarget("1lst", 107, 116),
    BenchmarkTarget("1nls", 99, 108),
    BenchmarkTarget("1onc", 68, 77),
    BenchmarkTarget("1pbe", 126, 135),
    BenchmarkTarget("1php", 65, 74),
    BenchmarkTarget("1plc", 42, 51),
    BenchmarkTarget("1poa", 84, 93),
    BenchmarkTarget("1ppn", 81, 90),
    BenchmarkTarget("1prn", 163, 172),
    BenchmarkTarget("1rcf", 39, 48),
    BenchmarkTarget("1rge", 60, 69),
    BenchmarkTarget("1rro", 17, 26),
    BenchmarkTarget("1sbp", 116, 125),
    BenchmarkTarget("1thw", 178, 187),
    BenchmarkTarget("1tib", 100, 109),
    BenchmarkTarget("1tml", 243, 252),
    BenchmarkTarget("1xif", 59, 68),
    BenchmarkTarget("2cpl", 25, 34),
    BenchmarkTarget("2exo", 293, 302),
)


def benchmark_registry() -> List[BenchmarkTarget]:
    """All 53 long-loop benchmark targets (>= 10 residues)."""
    registry = list(_TEN_RESIDUE) + list(_ELEVEN_RESIDUE) + list(_TWELVE_RESIDUE)
    return registry


def registry_summary() -> Dict[int, int]:
    """Number of targets per loop length, mirroring Table IV's first columns."""
    counts: Dict[int, int] = {}
    for target in benchmark_registry():
        counts[target.length] = counts.get(target.length, 0) + 1
    return dict(sorted(counts.items()))


def paper_named_targets() -> Dict[str, BenchmarkTarget]:
    """The targets explicitly named in the paper, keyed by name."""
    names = {
        "1cex(40:51)", "1akz(181:192)", "1xyz(813:824)", "1ixh(160:171)",
        "153l(98:109)", "1dim(213:224)", "3pte(91:101)", "5pti(7:17)",
    }
    return {t.name: t for t in benchmark_registry() if t.name in names}


# ---------------------------------------------------------------------------
# Target generation.
# ---------------------------------------------------------------------------

_AA_ALPHABET = "ACDEFGHIKLMNPQRSTVWY"


def _target_seed(pdb_id: str, start_res: int, end_res: int) -> int:
    """Deterministic seed derived from the target identity."""
    h = 1469598103934665603
    for ch in f"{pdb_id}:{start_res}:{end_res}".encode("utf8"):
        h ^= ch
        h = (h * 1099511628211) % (2 ** 63)
    return h


def _generate_environment(
    loop_coords: np.ndarray,
    n_anchor: np.ndarray,
    c_anchor: np.ndarray,
    rng: np.random.Generator,
    buried: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the excluded-volume environment around a native loop.

    Two components:

    * *stem atoms*: short pseudo-chains extending away from both anchors,
      standing in for the protein backbone the loop is attached to;
    * a *packing shell*: pseudo-atoms scattered around the loop at
      protein-like packing distances, rejected if they clash with the native
      loop, the anchors or each other.  Buried loops receive a much denser
      and closer shell, which is what makes them hard to model.
    """
    loop_atoms = loop_coords.reshape(-1, 3)
    protected = np.concatenate([loop_atoms, n_anchor, c_anchor])
    centroid = loop_atoms.mean(axis=0)

    env: List[np.ndarray] = []

    # Stem atoms: extend from each anchor away from the loop centroid.
    for anchor_atoms in (n_anchor, c_anchor):
        base = anchor_atoms[0]
        direction = base - centroid
        norm = np.linalg.norm(direction)
        direction = direction / norm if norm > 1e-9 else np.array([1.0, 0.0, 0.0])
        for k in range(1, 7):
            jitter = rng.normal(scale=0.6, size=3)
            env.append(base + direction * (1.8 * k) + jitter)

    # Packing shell.  Buried loops receive roughly twice as many shell atoms,
    # packed closer to the loop (smaller radii and separations), which is what
    # makes them clash-prone and hard to model.
    if buried:
        n_shell, r_min, r_max, min_sep, min_loop_dist = 180, 3.8, 11.0, 2.4, 3.4
    else:
        n_shell, r_min, r_max, min_sep, min_loop_dist = 90, 5.5, 13.0, 3.0, 4.2

    shell: List[np.ndarray] = []
    attempts = 0
    max_attempts = n_shell * 200
    while len(shell) < n_shell and attempts < max_attempts:
        attempts += 1
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        radius = rng.uniform(r_min, r_max)
        point = centroid + direction * radius
        if np.min(np.linalg.norm(protected - point, axis=1)) < min_loop_dist:
            continue
        if shell and np.min(np.linalg.norm(np.array(shell) - point, axis=1)) < min_sep:
            continue
        shell.append(point)
    env.extend(shell)

    coords = np.array(env, dtype=np.float64)
    radii = np.full(coords.shape[0], constants.VDW_RADIUS["CA"])
    return coords, radii


def make_target(
    pdb_id: str,
    start_res: int,
    end_res: int,
    buried: bool = False,
    seed: Optional[int] = None,
    smoothness: float = 0.55,
) -> LoopTarget:
    """Generate the synthetic :class:`LoopTarget` for a registry entry.

    The generation is deterministic in ``(pdb_id, start_res, end_res)``
    unless an explicit ``seed`` is passed, so every caller sees the same
    native conformation and environment for a given target name.
    """
    length = end_res - start_res + 1
    if length < 1:
        raise ValueError("end_res must be >= start_res")
    base_seed = _target_seed(pdb_id, start_res, end_res) if seed is None else seed
    rng = spawn_rng(base_seed, 1)

    sequence = "".join(rng.choice(list(_AA_ALPHABET), size=length))
    model = RamachandranModel(smoothness=smoothness)
    native_torsions = model.sample_sequence(sequence, rng)
    end_phi = float(rng.uniform(np.radians(-150.0), np.radians(-30.0)))

    n_anchor = canonical_n_anchor()
    native_coords, closure = build_backbone(native_torsions, n_anchor, end_phi)
    c_anchor = closure.copy()

    env_coords, env_radii = _generate_environment(
        native_coords, n_anchor, c_anchor, rng, buried
    )

    return LoopTarget(
        name=f"{pdb_id}({start_res}:{end_res})",
        pdb_id=pdb_id,
        start_res=start_res,
        end_res=end_res,
        sequence=sequence,
        n_anchor=n_anchor,
        c_anchor=c_anchor,
        end_phi=end_phi,
        native_torsions=native_torsions,
        native_coords=native_coords,
        environment_coords=env_coords,
        environment_radii=env_radii,
        buried=buried,
    )


@lru_cache(maxsize=128)
def _cached_target(pdb_id: str, start_res: int, end_res: int, buried: bool) -> LoopTarget:
    return make_target(pdb_id, start_res, end_res, buried=buried)


def get_target(name: str) -> LoopTarget:
    """Look up a benchmark target by its paper-style name.

    Parameters
    ----------
    name:
        Either ``"1cex(40:51)"`` or the bare PDB id ``"1cex"`` when that id
        appears exactly once in the registry.
    """
    registry = benchmark_registry()
    matches = [t for t in registry if t.name == name]
    if not matches:
        matches = [t for t in registry if t.pdb_id == name]
    if not matches:
        raise KeyError(f"unknown benchmark target: {name!r}")
    if len(matches) > 1:
        raise KeyError(f"ambiguous benchmark target name: {name!r}")
    entry = matches[0]
    return _cached_target(entry.pdb_id, entry.start_res, entry.end_res, entry.buried)

"""Loop definitions, the synthetic loop library and the benchmark targets.

The paper evaluates on the 53 long-loop (>= 10 residues) targets of the
Jacobson loop-decoy benchmark and derives its knowledge-based potentials
from a large loop library.  Neither dataset ships with this reproduction,
so both are generated synthetically (see DESIGN.md, Section 2) with
deterministic seeds; the benchmark registry keeps the same target count,
length distribution and named hard/easy cases as the paper.
"""

from repro.loops.loop import LoopTarget, canonical_n_anchor
from repro.loops.ramachandran import (
    RamachandranModel,
    sample_basin,
    sample_loop_torsions,
)
from repro.loops.library import LoopLibrary, LoopRecord
from repro.loops.targets import (
    BenchmarkTarget,
    benchmark_registry,
    get_target,
    make_target,
    paper_named_targets,
)

__all__ = [
    "LoopTarget",
    "canonical_n_anchor",
    "RamachandranModel",
    "sample_basin",
    "sample_loop_torsions",
    "LoopLibrary",
    "LoopRecord",
    "BenchmarkTarget",
    "benchmark_registry",
    "get_target",
    "make_target",
    "paper_named_targets",
]

"""Ramachandran-basin model of backbone torsion preferences.

Used in three places:

* generating the synthetic loop library from which the knowledge-based
  potentials (TRIPLET, DIST) are derived,
* generating native conformations for the synthetic benchmark targets,
* biasing the population initialisation and mutation proposals of the
  sampler towards physically plausible torsions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import constants
from repro.geometry.vectors import wrap_angle
from repro.protein.residue import validate_sequence

__all__ = ["RamachandranModel", "sample_basin", "sample_loop_torsions"]


def sample_basin(aa: str, rng: np.random.Generator) -> Tuple[float, float]:
    """Draw one (phi, psi) pair for residue type ``aa`` from its basin mixture."""
    basins = constants.ramachandran_basins(aa)
    weights = np.array([b[4] for b in basins])
    weights = weights / weights.sum()
    idx = rng.choice(len(basins), p=weights)
    phi_mean, psi_mean, phi_sigma, psi_sigma, _w = basins[idx]
    phi = wrap_angle(rng.normal(phi_mean, phi_sigma))
    psi = wrap_angle(rng.normal(psi_mean, psi_sigma))
    return float(phi), float(psi)


def sample_loop_torsions(
    sequence: str,
    rng: np.random.Generator,
    smoothness: float = 0.0,
) -> np.ndarray:
    """Sample a full loop torsion vector ``(phi_1, psi_1, ..., phi_n, psi_n)``.

    Parameters
    ----------
    sequence:
        One-letter loop sequence.
    rng:
        Random generator.
    smoothness:
        In ``[0, 1)``: probability that a residue re-uses the basin of its
        predecessor, which produces runs of similar local structure (as real
        loops do) instead of independent per-residue draws.
    """
    seq = validate_sequence(sequence)
    if not (0.0 <= smoothness < 1.0):
        raise ValueError("smoothness must be in [0, 1)")
    torsions = np.zeros(2 * len(seq), dtype=np.float64)
    prev_basin: Optional[int] = None
    for i, aa in enumerate(seq):
        basins = constants.ramachandran_basins(aa)
        weights = np.array([b[4] for b in basins])
        weights = weights / weights.sum()
        if prev_basin is not None and prev_basin < len(basins) and rng.random() < smoothness:
            idx = prev_basin
        else:
            idx = int(rng.choice(len(basins), p=weights))
        phi_mean, psi_mean, phi_sigma, psi_sigma, _w = basins[idx]
        torsions[2 * i] = wrap_angle(rng.normal(phi_mean, phi_sigma))
        torsions[2 * i + 1] = wrap_angle(rng.normal(psi_mean, psi_sigma))
        prev_basin = idx
    return torsions


@dataclass
class RamachandranModel:
    """Callable wrapper bundling the basin tables with convenience methods."""

    smoothness: float = 0.3

    def sample_sequence(self, sequence: str, rng: np.random.Generator) -> np.ndarray:
        """Sample a loop torsion vector for ``sequence``."""
        return sample_loop_torsions(sequence, rng, smoothness=self.smoothness)

    def sample_population(
        self, sequence: str, population_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample a ``(P, 2n)`` population torsion matrix for ``sequence``."""
        if population_size <= 0:
            raise ValueError("population_size must be positive")
        return np.stack(
            [self.sample_sequence(sequence, rng) for _ in range(population_size)]
        )

    def log_density(self, aa: str, phi: float, psi: float) -> float:
        """Log of the (unnormalised) basin-mixture density at (phi, psi).

        Used by tests and by the mutation operator's optional bias.  The
        density is a wrapped-Gaussian mixture; wrapping is approximated by
        evaluating the nearest periodic image, which is accurate for the
        basin widths used here (sigma << pi).
        """
        basins = constants.ramachandran_basins(aa)
        total = 0.0
        for phi_mean, psi_mean, phi_sigma, psi_sigma, weight in basins:
            dphi = wrap_angle(phi - phi_mean)
            dpsi = wrap_angle(psi - psi_mean)
            z = (dphi / phi_sigma) ** 2 + (dpsi / psi_sigma) ** 2
            total += weight * np.exp(-0.5 * z) / (phi_sigma * psi_sigma)
        return float(np.log(max(total, 1e-300)))

    def sample_pairs(
        self, aa: str, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``count`` independent (phi, psi) pairs for residue type ``aa``."""
        out = np.zeros((count, 2), dtype=np.float64)
        for i in range(count):
            out[i] = sample_basin(aa, rng)
        return out

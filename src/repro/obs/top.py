"""Plain-text fleet and campaign status rendering for ``repro-top``.

``repro-top`` is a read-only observer: it polls the store for daemon
heartbeats (:mod:`repro.obs.fleet`), per-campaign cell states and the
tail of each campaign journal, and renders one text screen per tick.
It holds no locks, claims no leases and writes nothing — pointing ten
``repro-top`` instances at a store changes nothing about a drain.

The renderer is split into pure functions over already-read documents
(:func:`render_fleet`, :func:`render_campaigns`, :func:`render_journal`)
so tests can feed fixed snapshots and assert exact text, and one
store-polling composition (:func:`render_screen`) used by the CLI loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.fleet import fleet_snapshot

if TYPE_CHECKING:
    from repro.runtime.store import RunStore

__all__ = [
    "campaign_rows",
    "render_campaigns",
    "render_fleet",
    "render_journal",
    "render_screen",
]

#: Cell states in display order; unknown states sort after these.
_STATE_ORDER = ("done", "running", "waiting", "failed", "pending")


def render_fleet(snapshot: Dict[str, Any]) -> str:
    """The daemon table of one fleet snapshot (see :func:`fleet_snapshot`)."""
    lines = [
        f"fleet: {snapshot['n_alive']}/{snapshot['n_daemons']} daemon(s) alive, "
        f"{snapshot['workers']} worker(s)"
    ]
    if snapshot["daemons"]:
        lines.append(
            f"  {'daemon':<28}{'alive':<7}{'age':>8}{'workers':>9}{'cycle':>7}  drained"
        )
    for daemon in snapshot["daemons"]:
        report = daemon.get("report", {})
        drained = ", ".join(
            f"{key}={int(report[key])}" for key in sorted(report) if report[key]
        )
        lines.append(
            f"  {str(daemon.get('daemon', '?')):<28}"
            f"{'yes' if daemon.get('alive') else 'NO':<7}"
            f"{daemon.get('age_seconds', 0.0):>7.1f}s"
            f"{daemon.get('workers') or 0:>9}"
            f"{daemon.get('cycle', 0):>7}  {drained}"
        )
    totals = snapshot.get("totals", {})
    cache = totals.get("cache", {})
    if cache:
        summary = ", ".join(f"{key}={int(cache[key])}" for key in sorted(cache))
        lines.append(f"  cache totals: {summary}")
    return "\n".join(lines)


def campaign_rows(store: "RunStore") -> List[Tuple[str, Dict[str, int], int]]:
    """``(campaign_id, state counts, n_cells)`` for every run in the store.

    States come from each cell's status document, with results on disk
    overriding (a worker killed after writing its result but before its
    final status update still counts as done).
    """
    rows: List[Tuple[str, Dict[str, int], int]] = []
    for run_id in store.list_runs():
        try:
            spec = store.load_manifest(run_id).spec
            cells = spec.cells()
        except Exception:
            continue
        counts: Dict[str, int] = {}
        for cell in cells:
            if store.has_shard_result(run_id, cell.index):
                state = "done"
            else:
                status = store.read_shard_status(run_id, cell.index)
                state = str(status.get("state", "pending"))
            counts[state] = counts.get(state, 0) + 1
        rows.append((run_id, counts, len(cells)))
    return rows


def render_campaigns(rows: Sequence[Tuple[str, Dict[str, int], int]]) -> str:
    """The campaign table from :func:`campaign_rows` output."""
    lines = [f"campaigns: {len(rows)}"]
    for run_id, counts, n_cells in rows:
        ordered = [s for s in _STATE_ORDER if counts.get(s)]
        ordered += [s for s in sorted(counts) if s not in _STATE_ORDER]
        summary = ", ".join(f"{counts[s]} {s}" for s in ordered) or "empty"
        done = counts.get("done", 0)
        bar_width = 20
        filled = int(round(bar_width * done / n_cells)) if n_cells else 0
        bar = "#" * filled + "." * (bar_width - filled)
        lines.append(f"  {run_id:<28}[{bar}] {done}/{n_cells}  {summary}")
    return "\n".join(lines)


def render_journal(store: "RunStore", run_id: str, tail: int = 5) -> str:
    """The last ``tail`` journal events of one campaign, one line each."""
    try:
        events, _offset = store.read_journal(run_id)
    except Exception:
        return ""
    lines: List[str] = []
    for event in events[-tail:]:
        kind = str(event.get("type", "?"))
        detail = ", ".join(
            f"{key}={event[key]}" for key in sorted(event) if key != "type"
        )
        lines.append(f"    {kind}: {detail}")
    return "\n".join(lines)


def render_screen(
    store: "RunStore",
    stale_seconds: float = 120.0,
    journal_tail: int = 3,
    now: Optional[float] = None,
) -> str:
    """One full ``repro-top`` frame: fleet, campaigns, journal tails."""
    sections = [render_fleet(fleet_snapshot(store, stale_seconds, now=now))]
    rows = campaign_rows(store)
    sections.append(render_campaigns(rows))
    for run_id, counts, _ in rows:
        if counts.get("done", 0) == sum(counts.values()):
            continue
        journal = render_journal(store, run_id, tail=journal_tail)
        if journal:
            sections.append(f"  journal {run_id}:\n{journal}")
    return "\n\n".join(sections)

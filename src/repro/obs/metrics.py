"""A process-wide metrics registry with Prometheus text rendering.

Counters, gauges and fixed-bucket histograms, stdlib only.  Instruments
the serving layer (lease claims and takeovers, cache hits/misses/
evictions, drain throughput, queue depth, worker utilisation) and renders
at ``GET /v1/metrics`` on ``repro-serve`` in the Prometheus text
exposition format (version 0.0.4), so a stock Prometheus scrape job —
or plain ``curl`` — reads a daemon fleet without any client library.

One module-level :data:`REGISTRY` is the process default; libraries
increment through it, tests construct private registries.  Everything is
lock-protected (the HTTP server renders from handler threads while the
drain loop increments) and rendering iterates families and label sets in
sorted order, so two renders of the same state are byte-identical.

Metrics are telemetry, not state: nothing here may feed a journal
payload, a cache key or a checkpoint (REP004 patrols this package), and
a counter increment is two dict operations under a lock — cheap enough
to leave on unconditionally.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
]

#: Default histogram buckets (seconds-flavoured, widely useful).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005,
    0.025,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
    120.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


class _Metric:
    """Shared plumbing of one metric family (name, help, label series)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = lock
        self._series: Dict[_LabelKey, float] = {}

    def value(self, **labels: object) -> float:
        """Current value of one label series (0 when never touched)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def _render_series(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} {_render_value(value)}"
            for key, value in sorted(self._series.items())
        ]

    def render(self) -> List[str]:
        """The family's exposition lines (HELP, TYPE, then series)."""
        with self._lock:
            lines = [
                f"# HELP {self.name} {self.help_text}",
                f"# TYPE {self.name} {self.kind}",
            ]
            lines.extend(self._render_series())
            return lines

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{"name{labels}": value}`` view (heartbeat payloads)."""
        with self._lock:
            return {
                f"{self.name}{_render_labels(key)}": value
                for key, value in sorted(self._series.items())
            }


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (default 1) to one label series."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(_Metric):
    """A value that goes up and down (queue depth, utilisation, ...)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Set one label series to ``value``."""
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (possibly negative) to one label series."""
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount


class Histogram(_Metric):
    """Fixed-bucket distribution, rendered as cumulative ``_bucket`` series."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, lock)
        self.buckets: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        self._bucket_counts: Dict[_LabelKey, List[int]] = {}
        self._counts: Dict[_LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation."""
        key = _label_key(labels)
        with self._lock:
            counts = self._bucket_counts.setdefault(key, [0] * len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            self._counts[key] = self._counts.get(key, 0) + 1
            self._series[key] = self._series.get(key, 0.0) + value  # running sum

    def _render_series(self) -> List[str]:
        lines: List[str] = []
        for key in sorted(self._bucket_counts):
            counts = self._bucket_counts[key]
            for bound, count in zip(self.buckets, counts):
                bucket_key = key + (("le", _render_value(bound)),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(tuple(sorted(bucket_key)))} "
                    f"{count}"
                )
            inf_key = key + (("le", "+Inf"),)
            lines.append(
                f"{self.name}_bucket{_render_labels(tuple(sorted(inf_key)))} "
                f"{self._counts[key]}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_render_value(self._series.get(key, 0.0))}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {self._counts[key]}")
        return lines


class MetricsRegistry:
    """Creates, holds and renders the metric families of one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Metric] = {}

    def _get(
        self,
        cls: type,
        name: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> _Metric:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                if cls is Histogram:
                    family = Histogram(
                        name,
                        help_text,
                        threading.Lock(),
                        buckets if buckets is not None else DEFAULT_BUCKETS,
                    )
                else:
                    family = cls(name, help_text, threading.Lock())
                self._families[name] = family
            elif not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get-or-create the counter family ``name``."""
        family = self._get(Counter, name, help_text)
        assert isinstance(family, Counter)
        return family

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get-or-create the gauge family ``name``."""
        family = self._get(Gauge, name, help_text)
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get-or-create the histogram family ``name``."""
        family = self._get(Histogram, name, help_text, buckets)
        assert isinstance(family, Histogram)
        return family

    def render(self) -> str:
        """Prometheus text exposition of every family, sorted by name."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: List[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Union[float, int]]:
        """Flat series map of every family (heartbeat payloads)."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        out: Dict[str, Union[float, int]] = {}
        for family in families:
            out.update(family.snapshot())
        return out


#: The process-wide default registry every subsystem increments through.
REGISTRY = MetricsRegistry()

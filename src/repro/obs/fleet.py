"""Daemon heartbeats and the aggregated fleet view.

Every ``repro-daemon`` writes one small heartbeat document after each
drain pass, under the store it drains::

    <store root>/.fleet/<daemon slug>/heartbeat.json

The store stays the only coordination substrate — no new sockets, no
registry service: point N daemons and one ``repro-serve`` at a directory
and ``GET /v1/fleet`` (or ``repro-top``) sees the whole fleet.

Heartbeats are pure telemetry on the status channel: they carry
wall-clock stamps, pids and per-daemon metric snapshots, and are
rewritten freely (atomic whole-document replace, like ``status.json``).
They are never replay-compared, never journaled and never part of a
cache key; a vanished or stale heartbeat means "daemon gone", nothing
more.  The wall-clock payload is built outside the write call
(:func:`_heartbeat_payload`), keeping REP004's payload-writer rule
trivially satisfied, exactly like the lease heartbeats.

The store parameter is duck-typed (anything with a ``root`` path —
a :class:`~repro.runtime.store.RunStore` in practice) so this module
stays in the bottom layering band and every layer above may import it.
"""

from __future__ import annotations

import os
import re
import socket
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.io import write_json_atomic

if TYPE_CHECKING:
    from repro.runtime.store import RunStore

__all__ = [
    "FLEET_DIR_NAME",
    "HEARTBEAT_FORMAT_VERSION",
    "HEARTBEAT_NAME",
    "DEFAULT_STALE_SECONDS",
    "default_daemon_id",
    "fleet_snapshot",
    "heartbeat_path",
    "read_heartbeats",
    "write_heartbeat",
]

#: Heartbeat document layout version.
HEARTBEAT_FORMAT_VERSION: int = 1

#: Directory (under the store root) holding one subdirectory per daemon.
FLEET_DIR_NAME: str = ".fleet"

#: The heartbeat filename; listed in the lint policy's transient-file
#: class (PROTOCOL_TRANSIENT) alongside status.json and lease.json.
HEARTBEAT_NAME: str = "heartbeat.json"

#: Seconds after which a daemon without a fresh heartbeat counts as gone.
#: Generous: a daemon mid-pass writes only *between* passes, so the
#: threshold must cover a long pass plus the poll interval.
DEFAULT_STALE_SECONDS: float = 120.0


def default_daemon_id() -> str:
    """A daemon identity derived from host and pid (best-effort unique)."""
    return f"{socket.gethostname()}.{os.getpid()}"


def _slug(daemon_id: str) -> str:
    """A filesystem-safe directory name for one daemon identity."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", daemon_id).strip("-") or "daemon"


def _store_root(store: Union["RunStore", str, Path]) -> Path:
    # Paths and strings pass through; anything else is store-like and
    # names its directory via `.root`.  (Path objects must not take the
    # getattr branch: `Path.root` is the filesystem anchor `"/"`.)
    if isinstance(store, (str, Path)):
        return Path(store)
    return Path(store.root)


def heartbeat_path(
    store: Union["RunStore", str, Path], daemon_id: str
) -> Path:
    """Where one daemon's heartbeat lives under the store."""
    return _store_root(store) / FLEET_DIR_NAME / _slug(daemon_id) / HEARTBEAT_NAME


def _heartbeat_payload(
    daemon_id: str,
    workers: Optional[int],
    cycle: int,
    report: Optional[Dict[str, Any]],
    cache_stats: Optional[Dict[str, int]],
    metrics: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    """The heartbeat document, wall-clock stamp included.

    Built outside any write call on purpose: wall-clock readings stay
    lexically clear of payload-writer arguments (lint rule REP004 — the
    same shape the lease manager uses for its heartbeats).
    """
    payload: Dict[str, Any] = {
        "format_version": HEARTBEAT_FORMAT_VERSION,
        "daemon": daemon_id,
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "heartbeat": time.time(),
        "workers": workers,
        "cycle": int(cycle),
    }
    if report is not None:
        payload["report"] = dict(report)
    if cache_stats is not None:
        payload["cache"] = dict(cache_stats)
    if metrics is not None:
        payload["metrics"] = dict(metrics)
    return payload


def write_heartbeat(
    store: Union["RunStore", str, Path],
    daemon_id: str,
    workers: Optional[int] = None,
    cycle: int = 0,
    report: Optional[Dict[str, Any]] = None,
    cache_stats: Optional[Dict[str, int]] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Path:
    """Atomically (re)write one daemon's heartbeat; returns its path.

    ``report`` is a drain-report summary (counts per outcome),
    ``cache_stats`` the result cache's hit/miss/eviction counters and
    ``metrics`` a flat metrics snapshot
    (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`) — all optional,
    all telemetry.
    """
    path = heartbeat_path(store, daemon_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = _heartbeat_payload(
        daemon_id, workers, cycle, report, cache_stats, metrics
    )
    write_json_atomic(path, payload)
    return path


def read_heartbeats(
    store: Union["RunStore", str, Path]
) -> List[Dict[str, Any]]:
    """Every parseable heartbeat under the store, sorted by daemon slug.

    Unreadable or torn documents are skipped — a heartbeat promises
    nothing; the daemon will rewrite it after its next pass.
    """
    import json

    fleet_dir = _store_root(store) / FLEET_DIR_NAME
    if not fleet_dir.is_dir():
        return []
    heartbeats: List[Dict[str, Any]] = []
    for entry in sorted(fleet_dir.iterdir()):
        path = entry / HEARTBEAT_NAME
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(document, dict) and "heartbeat" in document:
            heartbeats.append(document)
    return heartbeats


def _sum_counts(totals: Dict[str, float], series: Dict[str, Any]) -> None:
    for key, value in series.items():
        if isinstance(value, (int, float)):
            totals[key] = totals.get(key, 0.0) + float(value)


def fleet_snapshot(
    store: Union["RunStore", str, Path],
    stale_seconds: float = DEFAULT_STALE_SECONDS,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Aggregate every daemon heartbeat into one fleet document.

    Each daemon entry gains ``age_seconds`` and ``alive`` (heartbeat
    younger than ``stale_seconds``); ``totals`` sums the numeric drain
    and cache counters across *live* daemons.  ``now`` overrides the
    wall clock for tests.
    """
    if now is None:
        now = time.time()
    daemons: List[Dict[str, Any]] = []
    workers = 0
    report_totals: Dict[str, float] = {}
    cache_totals: Dict[str, float] = {}
    for document in read_heartbeats(store):
        age = max(0.0, now - float(document.get("heartbeat", 0.0)))
        alive = age < stale_seconds
        entry = dict(document)
        entry["age_seconds"] = age
        entry["alive"] = alive
        daemons.append(entry)
        if not alive:
            continue
        workers += int(document.get("workers") or 0)
        _sum_counts(report_totals, document.get("report", {}))
        _sum_counts(cache_totals, document.get("cache", {}))
    return {
        "n_daemons": len(daemons),
        "n_alive": sum(1 for d in daemons if d["alive"]),
        "workers": workers,
        "daemons": daemons,
        "totals": {"report": report_totals, "cache": cache_totals},
    }

"""Span-based tracing: nested, monotonic-clock sections with JSON export.

A :class:`Tracer` records a tree of :class:`Span` objects.  Spans nest
through an explicit stack (``begin``/``end``) or the :meth:`Tracer.span`
context manager; times are *offsets from the tracer's origin* read off an
injectable monotonic clock (:func:`time.perf_counter` by default — never
the wall clock, so a tracer is legal even in wall-clock-free modules).
Tests inject a fake clock and get byte-deterministic trace documents.

The cell executor uses exactly three verbs:

* ``begin``/``end`` around the cell and around each checkpoint *epoch*
  (the span between two checkpoint boundaries);
* :meth:`Tracer.absorb_ledger` at each epoch close, turning the kernel
  :class:`~repro.utils.timing.TimingLedger` *delta* since the epoch
  opened into consecutive leaf spans — the paper's Table II sections
  become the innermost trace level;
* :meth:`Tracer.to_dict` to persist the tree as the cell's
  ``trace.json`` (a status-channel file: never replay-compared).

:func:`chrome_trace` merges per-cell trace documents into one Chrome
trace-event JSON object (``{"traceEvents": [...]}``) that Perfetto and
``chrome://tracing`` load directly: one synthetic campaign-level event on
thread 0 spanning the slowest cell, each cell on its own named thread,
every event carrying its nesting ``depth`` in ``args`` so validators can
assert the campaign → cell → epoch → kernel hierarchy without re-deriving
containment from timestamps.

Cost model: a disabled tracer (``Tracer(enabled=False)``) reduces every
verb to an attribute check, and the executor does not even construct one
unless tracing was requested — the traced-vs-untraced drain benchmark
(``BENCH_obs.json``) holds the overhead of the *enabled* path under 3%.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.utils.timing import TimingLedger

__all__ = [
    "TRACE_FORMAT_VERSION",
    "Span",
    "Tracer",
    "chrome_trace",
    "ledger_snapshot",
    "trace_depth",
]

#: Layout version of persisted trace documents.
TRACE_FORMAT_VERSION: int = 1


@dataclass
class Span:
    """One named section of a trace: an interval plus nested children.

    ``start`` is seconds since the owning tracer's origin; ``duration``
    is ``None`` while the span is still open.  ``args`` carries small
    JSON-safe annotations (target, seed, call counts, ...).
    """

    name: str
    category: str = ""
    start: float = 0.0
    duration: Optional[float] = None
    args: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def end(self) -> float:
        """The span's end offset (its start while still open)."""
        return self.start + (self.duration or 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering of the span subtree."""
        return {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "args": dict(self.args),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span subtree from :meth:`to_dict` output."""
        duration = payload.get("duration")
        return cls(
            name=str(payload.get("name", "")),
            category=str(payload.get("category", "")),
            start=float(payload.get("start", 0.0)),
            duration=None if duration is None else float(duration),
            args=dict(payload.get("args", {})),
            children=[cls.from_dict(c) for c in payload.get("children", ())],
        )


def ledger_snapshot(ledger: "TimingLedger") -> Dict[str, Tuple[int, float]]:
    """Point-in-time copy of a ledger: section name -> (calls, seconds).

    Taken at an epoch open and subtracted at the epoch close, so the
    cumulative per-run ledger yields true per-epoch kernel sections.
    """
    return {
        name: (rec.calls, rec.total_seconds) for name, rec in ledger.records.items()
    }


class Tracer:
    """Records a tree of spans against an injectable monotonic clock.

    The first ``begin`` pins the origin; every span time is an offset
    from it, so traces from different processes all start near zero and
    compose side by side in the campaign export.  A tracer is *not*
    thread-safe — the executor owns one per cell, inside one worker.
    """

    def __init__(
        self, enabled: bool = True, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self.enabled = enabled
        self._clock = clock
        self._origin: Optional[float] = None
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def _now(self) -> float:
        if self._origin is None:
            self._origin = self._clock()
            return 0.0
        return self._clock() - self._origin

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, category: str = "", **args: Any) -> Optional[Span]:
        """Open a span nested under the innermost open one."""
        if not self.enabled:
            return None
        span = Span(name=name, category=category, start=self._now(), args=dict(args))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self) -> None:
        """Close the innermost open span (no-op when nothing is open)."""
        if not self.enabled or not self._stack:
            return
        span = self._stack.pop()
        span.duration = self._now() - span.start

    def finish(self) -> None:
        """Close every still-open span (crash-path hygiene)."""
        while self._stack:
            self.end()

    @contextmanager
    def span(
        self, name: str, category: str = "", **args: Any
    ) -> Iterator[Optional[Span]]:
        """Context manager form of ``begin``/``end``."""
        opened = self.begin(name, category, **args)
        try:
            yield opened
        finally:
            if opened is not None:
                self.end()

    def add_leaf(
        self,
        name: str,
        start: float,
        duration: float,
        category: str = "",
        **args: Any,
    ) -> Optional[Span]:
        """Append an already-measured leaf span under the open span."""
        if not self.enabled:
            return None
        span = Span(
            name=name, category=category, start=start, duration=duration, args=dict(args)
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def absorb_ledger(
        self,
        ledger: "TimingLedger",
        category: str = "section",
        since: Optional[Dict[str, Tuple[int, float]]] = None,
        start: Optional[float] = None,
    ) -> None:
        """Turn a ledger (or its delta since a snapshot) into leaf spans.

        Each section becomes one leaf under the innermost open span, laid
        consecutively from ``start`` (the open span's start by default) in
        sorted-name order — ledgers accumulate durations, not intervals,
        so the layout is a deterministic rendering, not a timeline claim.
        The ``calls`` delta rides in the span args.
        """
        if not self.enabled:
            return
        deltas: Dict[str, Tuple[int, float]] = {}
        for name, rec in ledger.records.items():
            base_calls, base_seconds = (since or {}).get(name, (0, 0.0))
            calls = rec.calls - base_calls
            seconds = rec.total_seconds - base_seconds
            if calls > 0 or seconds > 0.0:
                deltas[name] = (calls, seconds)
        if start is not None:
            cursor = start
        elif self._stack:
            cursor = self._stack[-1].start
        else:
            cursor = 0.0
        for name in sorted(deltas):
            calls, seconds = deltas[name]
            self.add_leaf(name, cursor, seconds, category=category, calls=calls)
            cursor += seconds

    def to_dict(self) -> Dict[str, Any]:
        """The whole trace as a JSON-safe document (open spans closed first)."""
        self.finish()
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "spans": [span.to_dict() for span in self.roots],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Tracer":
        """Rebuild a (closed) tracer from :meth:`to_dict` output."""
        tracer = cls(enabled=True)
        tracer.roots = [Span.from_dict(s) for s in payload.get("spans", ())]
        return tracer


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------


def _append_events(
    span: Span, tid: int, depth: int, events: List[Dict[str, Any]]
) -> float:
    events.append(
        {
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round((span.duration or 0.0) * 1e6, 3),
            "pid": 1,
            "tid": tid,
            "args": dict(span.args, depth=depth),
        }
    )
    deepest = span.end
    for child in span.children:
        deepest = max(deepest, _append_events(child, tid, depth + 1, events))
    return deepest


def chrome_trace(
    label: str, cell_traces: Sequence[Tuple[str, Dict[str, Any]]]
) -> Dict[str, Any]:
    """Merge per-cell trace documents into one Chrome trace-event object.

    ``cell_traces`` is ``[(cell label, trace document), ...]`` in the
    order the threads should appear.  Every cell goes on its own named
    thread of one process; a synthetic *campaign* event on thread 0 spans
    the slowest cell, giving the export its outermost nesting level —
    campaign (depth 0) → cell (1) → epoch (2) → kernel section (3).
    Given identical inputs the output is identical: thread ids follow the
    input order, and no clock is read here.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": f"campaign {label}"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "campaign"},
        },
    ]
    body: List[Dict[str, Any]] = []
    total = 0.0
    for offset, (cell_label, document) in enumerate(cell_traces):
        tid = offset + 1
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": cell_label},
            }
        )
        for payload in document.get("spans", ()):
            span = Span.from_dict(payload)
            total = max(total, _append_events(span, tid, 1, body))
    events.append(
        {
            "name": f"campaign {label}",
            "cat": "campaign",
            "ph": "X",
            "ts": 0.0,
            "dur": round(total * 1e6, 3),
            "pid": 1,
            "tid": 0,
            "args": {"depth": 0, "n_cells": len(cell_traces)},
        }
    )
    events.extend(body)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def trace_depth(document: Dict[str, Any]) -> int:
    """Deepest ``args.depth`` across a Chrome trace document's events."""
    depth = 0
    for event in document.get("traceEvents", ()):
        args = event.get("args", {})
        if isinstance(args, dict) and "depth" in args:
            depth = max(depth, int(args["depth"]))
    return depth

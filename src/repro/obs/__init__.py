"""``repro.obs`` — spans, metrics and a fleet view for the campaign runtime.

The paper's own evaluation is a profiling story (Fig. 1's CPU breakdown,
Table II's GPU kernel times), yet until this package the reproduction
could only see itself through the ad-hoc :class:`~repro.utils.timing.
TimingLedger` and a tail of journal lines.  ``repro.obs`` is the
measurement backbone, zero-dependency and strictly *telemetry*:

* :mod:`repro.obs.trace` — span-based tracing.  A :class:`Tracer`
  records nested spans (campaign → cell → checkpoint epoch → kernel
  section); each cell's :class:`~repro.utils.timing.TimingLedger` is
  absorbed as leaf spans, the per-cell tree is persisted in the
  :class:`~repro.runtime.store.RunStore` (``trace.json``, a status-channel
  file), and ``repro-campaign trace <id>`` exports the whole campaign as
  Chrome trace-event JSON loadable in Perfetto / ``chrome://tracing``.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, histograms) instrumenting lease claims and
  takeovers, cache hits/misses/evictions, drain throughput, queue depth
  and worker utilisation; rendered in Prometheus text format at
  ``GET /v1/metrics`` on ``repro-serve``.
* :mod:`repro.obs.fleet` — daemon heartbeats.  Every ``repro-daemon``
  writes a small heartbeat document under ``<store>/.fleet/`` after each
  drain pass; ``GET /v1/fleet`` and ``repro-top`` aggregate them into a
  live fleet view.

The load-bearing invariant (enforced by lint rule REP004, whose scope
includes this package): **telemetry rides the status channel only**.
Spans, metrics and heartbeats may carry wall-clock stamps and host
identity precisely because they are never replay-compared — nothing from
this package may reach a journal payload, a checkpoint, a ledger or a
cache key, so kill-and-redrain byte-equality and cache addressing are
exactly as deterministic with tracing on as off.
"""

from repro.obs.fleet import (
    FLEET_DIR_NAME,
    HEARTBEAT_NAME,
    default_daemon_id,
    fleet_snapshot,
    heartbeat_path,
    read_heartbeats,
    write_heartbeat,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    TRACE_FORMAT_VERSION,
    Span,
    Tracer,
    chrome_trace,
    ledger_snapshot,
    trace_depth,
)

__all__ = [
    "Counter",
    "FLEET_DIR_NAME",
    "Gauge",
    "HEARTBEAT_NAME",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACE_FORMAT_VERSION",
    "Tracer",
    "chrome_trace",
    "default_daemon_id",
    "fleet_snapshot",
    "heartbeat_path",
    "ledger_snapshot",
    "read_heartbeats",
    "trace_depth",
    "write_heartbeat",
]

"""Simulated CPU-GPU backend.

Implements the paper's heterogeneous design on the simulated SIMT engine:

* the heavy kernels — [CCD], [EvalVDW], [EvalDIST], [EvalTRIP] and the two
  fitness assignments — run as population-batched vectorised operations,
  one logical thread per conformation, launched through the
  :class:`~repro.simt.engine.SIMTEngine` which profiles each launch;
* the knowledge-based scoring tables and the environment atoms are
  "uploaded" once at construction (texture-memory residency in the paper);
* the per-iteration host round trips (fitness values out for sorting,
  permutations back in, the final population readback) are recorded as
  simulated memcpy events so the Table II transfer rows can be reproduced.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional, Tuple

import numpy as np

from repro.backends.base import SamplingBackend
from repro.closure.ccd import CCDResult, ccd_close_batch
from repro.moscem.dominance import fitness_against, strength_fitness
from repro.scoring.pairwise import resolve_block_size
from repro.moscem.population import Population
from repro.simt.device import DeviceSpec, GTX280
from repro.simt.engine import SIMTEngine
from repro.simt.kernel import PAPER_KERNELS, KernelSpec
from repro.simt.memory import MemcpyKind
from repro.simt.profiler import KernelProfiler

__all__ = ["GPUBackend"]


class GPUBackend(SamplingBackend):
    """Population-batched backend running on the simulated SIMT engine."""

    name = "gpu"

    def __init__(
        self,
        target,
        multi_score,
        config,
        ledger=None,
        device: DeviceSpec = GTX280,
        engine: Optional[SIMTEngine] = None,
        profiler: Optional[KernelProfiler] = None,
    ) -> None:
        super().__init__(target, multi_score, config, ledger=ledger)
        self.engine = engine if engine is not None else SIMTEngine(
            device=device, profiler=profiler
        )

        # One-time upload of constant data, mirroring the paper's placement:
        # knowledge-based tables and environment data into texture memory,
        # run constants into constant memory.
        tables = []
        for fn in multi_score:
            kb = getattr(fn, "knowledge_base", None)
            if kb is not None:
                tables.extend([kb.triplet_neg_log, kb.distance_neg_log])
        tables.append(target.environment_coords)
        tables.append(target.environment_radii)
        self.engine.upload_tables(*tables)
        self.engine.upload_constants(256)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    @property
    def profiler(self) -> KernelProfiler:
        """The kernel profiler of the underlying engine."""
        return self.engine.profiler

    def _kernel(self, key: str) -> KernelSpec:
        return PAPER_KERNELS[key]

    def _launch(
        self, key: str, population_size: int, fn, *args, block_size=None, **kwargs
    ):
        """Launch a kernel, mirroring the timing into the backend ledger."""
        spec = self._kernel(key)
        before = self.profiler.kernel_seconds.get(spec.name, 0.0)
        result = self.engine.launch(
            spec, population_size, fn, *args, block_size=block_size, **kwargs
        )
        after = self.profiler.kernel_seconds.get(spec.name, 0.0)
        self.ledger.add(spec.name.replace("[", "").replace("]", ""), after - before)
        return result

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def close_loops(
        self, torsions: np.ndarray, start_indices: Optional[np.ndarray] = None
    ) -> CCDResult:
        """Close the whole population in lock-step with the batched CCD."""
        torsions = np.asarray(torsions, dtype=np.float64)
        pop = torsions.shape[0]
        # Proposals are produced on the host; record their transfer to the
        # device's global memory before the kernel reads them.
        self.engine.memcpy(MemcpyKind.HOST_TO_DEVICE, torsions)
        return self._launch(
            "CCD",
            pop,
            ccd_close_batch,
            torsions,
            self.target,
            start_indices=start_indices,
            max_iterations=self.config.ccd_iterations,
            tolerance=self.config.ccd_tolerance,
        )

    def evaluate_scores(self, coords: np.ndarray, torsions: np.ndarray) -> np.ndarray:
        """Evaluate every scoring function with one batched kernel each."""
        coords = np.asarray(coords, dtype=np.float64)
        torsions = np.asarray(torsions, dtype=np.float64)
        pop = coords.shape[0]
        # Fresh conformations are copied into texture memory for the scoring
        # kernels (device-to-array in the paper's scheme).
        self.engine.memcpy(MemcpyKind.DEVICE_TO_ARRAY, coords)
        columns = []
        for fn in self.multi_score:
            columns.append(
                self._launch(
                    fn.kernel_name,
                    pop,
                    fn.evaluate_batch,
                    coords,
                    torsions,
                    block_size=fn.resolved_block_size(pop),
                )
            )
        scores = np.stack(columns, axis=1)
        # Scores are copied to texture memory for the fitness kernels.
        self.engine.memcpy(MemcpyKind.DEVICE_TO_ARRAY, scores)
        return scores

    def fitness_population(self, scores: np.ndarray) -> np.ndarray:
        """Strength fitness over the whole population as one kernel launch."""
        scores = np.asarray(scores, dtype=np.float64)
        pop = scores.shape[0]
        chunk = self.config.kernel_block_size
        fitness = self._launch(
            "FitAssgPopulation",
            pop,
            partial(strength_fitness, scores, block_size=chunk),
            block_size=resolve_block_size(chunk, max(pop, 1)),
        )
        # Fitness values travel back to the host for sorting/partitioning.
        self.engine.memcpy(MemcpyKind.DEVICE_TO_HOST, fitness)
        return fitness

    def fitness_within_complexes(
        self,
        population_scores: np.ndarray,
        proposal_scores: np.ndarray,
        complex_indices: List[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Complex-wise fitness, launched as a single kernel per iteration."""
        population_scores = np.asarray(population_scores, dtype=np.float64)
        proposal_scores = np.asarray(proposal_scores, dtype=np.float64)
        pop = population_scores.shape[0]
        # The complex assignment (a permutation) is produced on the host.
        self.engine.memcpy(
            MemcpyKind.HOST_TO_DEVICE, np.concatenate(complex_indices)
        )

        chunk = self.config.kernel_block_size

        def _kernel() -> Tuple[np.ndarray, np.ndarray]:
            current = np.empty(pop, dtype=np.float64)
            proposed = np.empty(pop, dtype=np.float64)
            for indices in complex_indices:
                ref = population_scores[indices]
                current[indices] = fitness_against(
                    ref, population_scores[indices], block_size=chunk
                )
                proposed[indices] = fitness_against(
                    ref, proposal_scores[indices], block_size=chunk
                )
            return current, proposed

        return self._launch(
            "FitAssgComplex",
            pop,
            _kernel,
            block_size=resolve_block_size(chunk, max(pop, 1)),
        )

    # ------------------------------------------------------------------
    # Host synchronisation
    # ------------------------------------------------------------------

    def sync_to_host(self, population: Population) -> None:
        """Device-to-host copy of the data the host-side steps need."""
        if population.fitness is not None:
            self.engine.memcpy(MemcpyKind.DEVICE_TO_HOST, population.fitness)

    def sync_to_device(self, population: Population) -> None:
        """Host-to-device copy of the data mutated on the host."""
        self.engine.memcpy(MemcpyKind.HOST_TO_DEVICE, population.torsions)

    def finalize(self, population: Population) -> None:
        """Final readback of the whole population at the end of a run."""
        self.engine.memcpy(MemcpyKind.DEVICE_TO_HOST, population.nbytes())

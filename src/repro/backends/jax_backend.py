"""JAX backend: the batched kernels compiled through the xp facade.

The third execution tier alongside the scalar CPU reference and the
simulated SIMT backend: the same generic kernels the numpy engine runs
eagerly are bound to the ``jax.numpy`` namespace and compiled with
``jax.jit`` (64-bit mode) when the backend is constructed —
stack-assembly-time binding, so no dispatch or tracing decision is ever
taken inside the sampling loop.

Requires the ``jax`` wheel; constructing the backend without it raises
:class:`~repro.xp.xp.NamespaceError` with installation guidance.  The
``namespace`` parameter exists so the routing itself can be exercised on
the numpy namespace (bit-identical to the plain batched CPU backend) in
environments without JAX — that is how the test suite covers this module.

Kernel placement mirrors the facade's porting boundary:

* CCD sweeps run as the masked full-population
  :func:`~repro.closure.ccd._ccd_sweep` kernel (one jit unit per sweep);
* the VDW intra-loop terms and the DIST binned-table gather route through
  the bound bundle (scorers are re-bound via
  :meth:`~repro.scoring.base.ScoringFunction.use_kernels`);
* dominance/fitness block comparisons run through the bundle;
* host orchestration — convergence checks, population chunking, the
  ragged environment cell-list gather, sorting/partitioning — stays on
  numpy, exactly as the paper keeps it on the CPU.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.backends.cpu import CPUBackend
from repro.closure.ccd import CCDResult, ccd_close_batch
from repro.moscem.dominance import fitness_against, strength_fitness
from repro.xp.dispatch import bind_kernels

__all__ = ["JAXBackend"]


class JAXBackend(CPUBackend):
    """Population-batched backend bound to a jit-compiling namespace."""

    name = "jax"

    def __init__(
        self,
        target,
        multi_score,
        config,
        ledger=None,
        namespace: str = "jax",
    ) -> None:
        super().__init__(
            target, multi_score, config, ledger=ledger, scoring_mode="batched"
        )
        # Resolve the namespace and assemble the bundle once, here.  This
        # raises NamespaceError (with pip guidance) when jax is requested
        # but not importable — a construction-time failure, never a
        # mid-run one.
        self.kernels = bind_kernels(namespace)
        self.name = (
            "jax" if self.kernels.namespace.name == "jax"
            else f"xp-{self.kernels.namespace.name}"
        )
        # Re-bind the scoring stack onto the bundle.  Scorers keep the
        # bundle for their lifetime; callers sharing a MultiScore across
        # backends should rebind (use_kernels(None)) when switching back.
        for fn in self.multi_score:
            fn.use_kernels(self.kernels)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def close_loops(
        self, torsions: np.ndarray, start_indices: Optional[np.ndarray] = None
    ) -> CCDResult:
        """Close the population with the masked batched CCD sweep kernel."""
        torsions = np.asarray(torsions, dtype=np.float64)
        with self.ledger.section("CCD"):
            return ccd_close_batch(
                torsions,
                self.target,
                start_indices=start_indices,
                max_iterations=self.config.ccd_iterations,
                tolerance=self.config.ccd_tolerance,
                kernels=self.kernels,
            )

    def fitness_population(self, scores: np.ndarray) -> np.ndarray:
        """Strength fitness with bundle-bound dominance blocks."""
        with self.ledger.section("FitAssg within Population"):
            return strength_fitness(
                scores,
                block_size=self.config.kernel_block_size,
                kernels=self.kernels,
            )

    def fitness_within_complexes(
        self,
        population_scores: np.ndarray,
        proposal_scores: np.ndarray,
        complex_indices: List[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Complex-wise fitness with bundle-bound dominance blocks."""
        population_scores = np.asarray(population_scores, dtype=np.float64)
        proposal_scores = np.asarray(proposal_scores, dtype=np.float64)
        pop = population_scores.shape[0]
        current = np.empty(pop, dtype=np.float64)
        proposed = np.empty(pop, dtype=np.float64)
        block_size = self.config.kernel_block_size
        with self.ledger.section("FitAssg within Complex"):
            for indices in complex_indices:
                ref = population_scores[indices]
                current[indices] = fitness_against(
                    ref,
                    population_scores[indices],
                    block_size=block_size,
                    kernels=self.kernels,
                )
                proposed[indices] = fitness_against(
                    ref,
                    proposal_scores[indices],
                    block_size=block_size,
                    kernels=self.kernels,
                )
        return current, proposed

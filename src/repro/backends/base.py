"""Common interface of the sampling backends.

A backend owns the *kernels* of the sampler — the operations the paper
migrates to the GPU: loop closure ([CCD]), the three scoring-function
evaluations ([EvalVDW], [EvalDIST], [EvalTRIP]) and the fitness assignments
([FitAssg] within the population and within the complexes).  Host-side
components (sorting, partitioning, assembling, mutation bookkeeping) remain
in the sampler.

Every kernel call is timed into the backend's :class:`TimingLedger` under
the paper's kernel names, so the profiling experiments (Fig. 1, Table II)
can be generated from either backend.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

import numpy as np

from repro.closure.ccd import CCDResult
from repro.config import SamplingConfig
from repro.loops.loop import LoopTarget
from repro.moscem.population import Population
from repro.scoring.base import MultiScore
from repro.utils.timing import TimingLedger

__all__ = ["SamplingBackend"]


class SamplingBackend(abc.ABC):
    """Abstract backend executing the sampler's computational kernels."""

    #: Human-readable backend name (used in reports and benchmarks).
    name: str = "backend"

    def __init__(
        self,
        target: LoopTarget,
        multi_score: MultiScore,
        config: SamplingConfig,
        ledger: Optional[TimingLedger] = None,
    ) -> None:
        self.target = target
        self.multi_score = multi_score
        self.config = config
        self.ledger = ledger if ledger is not None else TimingLedger()

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def close_loops(
        self, torsions: np.ndarray, start_indices: Optional[np.ndarray] = None
    ) -> CCDResult:
        """Run CCD loop closure over the whole population ([CCD])."""

    @abc.abstractmethod
    def evaluate_scores(self, coords: np.ndarray, torsions: np.ndarray) -> np.ndarray:
        """Evaluate every scoring function over the population.

        Returns a ``(P, K)`` score matrix ([EvalVDW] / [EvalDIST] /
        [EvalTRIP]).
        """

    @abc.abstractmethod
    def fitness_population(self, scores: np.ndarray) -> np.ndarray:
        """Pareto-strength fitness over the whole population ([FitAssg])."""

    @abc.abstractmethod
    def fitness_within_complexes(
        self,
        population_scores: np.ndarray,
        proposal_scores: np.ndarray,
        complex_indices: List[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fitness of current members and proposals against their complexes.

        Returns ``(current_fitness, proposal_fitness)``, both of shape
        ``(P,)``, where each member/proposal is evaluated against the
        members of the complex it was dealt to ([FitAssg] within Complex).
        """

    # ------------------------------------------------------------------
    # Composite operations
    # ------------------------------------------------------------------

    def initialize(self, torsions: np.ndarray) -> Population:
        """Close and score an initial torsion population, returning it packed."""
        ccd = self.close_loops(torsions)
        scores = self.evaluate_scores(ccd.coords, ccd.torsions)
        return Population(
            torsions=ccd.torsions,
            coords=ccd.coords,
            closure=ccd.closure,
            scores=scores,
        )

    # ------------------------------------------------------------------
    # Host synchronisation hooks (no-ops except for the GPU backend)
    # ------------------------------------------------------------------

    def sync_to_host(self, population: Population) -> None:
        """Record any device-to-host transfer needed before host-side steps."""

    def sync_to_device(self, population: Population) -> None:
        """Record any host-to-device transfer needed after host-side steps."""

    def finalize(self, population: Population) -> None:
        """Record the final device-to-host readback at the end of a run."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def kernel_seconds(self) -> float:
        """Total time spent in this backend's kernels."""
        return self.ledger.total()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.__class__.__name__}(target={self.target.name!r}, "
            f"population={self.config.population_size})"
        )

"""CPU-only reference backend.

In its default ``"scalar"`` scoring mode it processes the population one
conformation at a time — the per-member control flow of the paper's
original CPU implementation whose time profile appears in Fig. 1, though
each member is scored by the modern engine kernels (squared-distance
math, cell-list environment pruning) rather than the paper's dense scans,
so the per-conformation call overhead is what the profile measures.  It
exists for three reasons:

* it is the ground truth the batched backend is validated against,
* it is the slow side of every speedup comparison (Fig. 4, Table I),
* its per-section timings generate the Fig. 1 breakdown.

Both scoring modes run on the same shared pairwise kernel engine
(:mod:`repro.scoring.pairwise`): ``"batched"`` evaluates each scoring
function with one population-wide call (the scorers chunk internally by
their own block size), while the ``"scalar"`` fallback calls the
per-member path (itself an exact one-member special case of the batched
kernels), preserving the paper's per-conformation cost profile.
``make_backend("cpu-batched", ...)`` selects the batched mode.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.closure.ccd import CCDResult, ccd_close
from repro.backends.base import SamplingBackend
from repro.moscem.dominance import fitness_against, strength_fitness

__all__ = ["CPUBackend"]


class CPUBackend(SamplingBackend):
    """Scalar, per-conformation backend (the paper's CPU implementation)."""

    name = "cpu"

    #: Supported scoring modes.
    SCORING_MODES = ("scalar", "batched")

    def __init__(self, *args, scoring_mode: str = "scalar", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if scoring_mode not in self.SCORING_MODES:
            raise ValueError(
                f"scoring_mode must be one of {self.SCORING_MODES}, "
                f"got {scoring_mode!r}"
            )
        self.scoring_mode = scoring_mode
        if scoring_mode == "batched":
            self.name = "cpu-batched"

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def close_loops(
        self, torsions: np.ndarray, start_indices: Optional[np.ndarray] = None
    ) -> CCDResult:
        """Close every conformation with the scalar CCD, one at a time."""
        torsions = np.asarray(torsions, dtype=np.float64)
        pop = torsions.shape[0]
        n = self.target.n_residues
        if start_indices is None:
            start_indices = np.zeros(pop, dtype=np.int64)

        closed = np.empty_like(torsions)
        coords = np.empty((pop, n, 4, 3), dtype=np.float64)
        closure = np.empty((pop, 3, 3), dtype=np.float64)
        errors = np.empty(pop, dtype=np.float64)
        iterations = np.empty(pop, dtype=np.int64)

        with self.ledger.section("CCD"):
            for i in range(pop):
                result = ccd_close(
                    torsions[i],
                    self.target,
                    start_index=int(start_indices[i]),
                    max_iterations=self.config.ccd_iterations,
                    tolerance=self.config.ccd_tolerance,
                )
                closed[i] = result.torsions
                coords[i] = result.coords
                closure[i] = result.closure
                errors[i] = result.closure_error
                iterations[i] = result.iterations

        return CCDResult(
            torsions=closed,
            coords=coords,
            closure=closure,
            closure_error=errors,
            iterations=iterations,
        )

    def evaluate_scores(self, coords: np.ndarray, torsions: np.ndarray) -> np.ndarray:
        """Evaluate every scoring function over the population.

        In ``"batched"`` mode each function runs as the population-chunked
        batched kernel; the ``"scalar"`` fallback (the default, and the
        paper's CPU reference) scores one conformation at a time.
        """
        coords = np.asarray(coords, dtype=np.float64)
        torsions = np.asarray(torsions, dtype=np.float64)
        pop = coords.shape[0]
        scores = np.empty((pop, len(self.multi_score)), dtype=np.float64)
        for k, fn in enumerate(self.multi_score):
            with self.ledger.section(fn.kernel_name):
                if self.scoring_mode == "batched":
                    # One call over the full population: the scorers chunk
                    # internally (like the GPU backend's kernel launches).
                    scores[:, k] = fn.evaluate_batch(coords, torsions)
                else:
                    for i in range(pop):
                        scores[i, k] = fn.evaluate(coords[i], torsions[i])
        return scores

    def fitness_population(self, scores: np.ndarray) -> np.ndarray:
        """Strength fitness over the whole population."""
        with self.ledger.section("FitAssg within Population"):
            return strength_fitness(
                scores, block_size=self.config.kernel_block_size
            )

    def fitness_within_complexes(
        self,
        population_scores: np.ndarray,
        proposal_scores: np.ndarray,
        complex_indices: List[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Complex-wise fitness of current members and their proposals."""
        population_scores = np.asarray(population_scores, dtype=np.float64)
        proposal_scores = np.asarray(proposal_scores, dtype=np.float64)
        pop = population_scores.shape[0]
        current = np.empty(pop, dtype=np.float64)
        proposed = np.empty(pop, dtype=np.float64)
        block_size = self.config.kernel_block_size
        with self.ledger.section("FitAssg within Complex"):
            for indices in complex_indices:
                ref = population_scores[indices]
                current[indices] = fitness_against(
                    ref, population_scores[indices], block_size=block_size
                )
                proposed[indices] = fitness_against(
                    ref, proposal_scores[indices], block_size=block_size
                )
        return current, proposed

"""Execution backends for the sampler's heavy kernels.

The paper's program exists in two flavours that this package mirrors:

* :class:`~repro.backends.cpu.CPUBackend` — the reference CPU-only
  implementation: every conformation is processed one at a time with the
  scalar kernels (loop closure, scoring), exactly the per-member loop the
  paper profiles in Fig. 1.
* :class:`~repro.backends.gpu.GPUBackend` — the heterogeneous "CPU-GPU"
  implementation: the expensive kernels (CCD, the three scoring functions,
  fitness assignment) run as population-batched vectorised operations on the
  simulated SIMT engine, one logical thread per conformation, while sorting,
  partitioning and assembly stay on the host.  Kernel timings and simulated
  host/device transfers are recorded by the engine's profiler.
* :class:`~repro.backends.jax_backend.JAXBackend` — the batched kernels
  bound to the :mod:`repro.xp` facade's jax namespace and compiled with
  ``jax.jit`` (requires the ``jax`` wheel; registered as ``"jax"``).

Both backends expose the same :class:`~repro.backends.base.SamplingBackend`
interface, so the MOSCEM sampler is oblivious to which one it runs on — the
same property that lets the paper claim functional equivalence between its
CPU and CPU-GPU programs.
"""

from repro.backends.base import SamplingBackend
from repro.backends.cpu import CPUBackend
from repro.backends.gpu import GPUBackend
from repro.backends.jax_backend import JAXBackend

__all__ = [
    "SamplingBackend",
    "CPUBackend",
    "GPUBackend",
    "JAXBackend",
    "make_backend",
]


def make_backend(kind: str, target, multi_score, config, **kwargs):
    """Factory: build a backend by its registry name.

    ``"cpu"`` is the paper's scalar reference, ``"cpu-batched"`` the same
    backend routed through the population-chunked batched scoring kernels,
    ``"gpu"`` (aliases ``"cpu-gpu"``, ``"simt"``) the simulated SIMT
    backend, ``"jax"`` (alias ``"jax-jit"``) the xp-facade tier
    compiled with ``jax.jit`` (requires the jax wheel), and ``"xp"``
    (aliases ``"xp-numpy"``, ``"array-api"``) the same facade routing on
    the eager numpy namespace — bit-identical to ``"gpu"``, available
    everywhere.  Additional backends can be contributed through
    :func:`repro.api.registry.register_backend` or a ``repro.backends``
    setuptools entry point.
    """
    from repro.api.registry import BACKENDS, RegistryError

    try:
        return BACKENDS.create(kind, target, multi_score, config, **kwargs)
    except RegistryError as exc:
        raise ValueError(str(exc)) from None

"""Benchmark TAB1 — speedup on the six 12-residue benchmark loops.

Paper rows (Table I, 15,360 threads, 100 iterations): speedups of 42.6,
40.3, 39.2, 37.3, 42.9 and 54.8 on 1cex, 1akz, 1xyz, 1ixh, 153l and 1dim —
a consistent ~40x across loops from different proteins.
"""


def test_table1_speedup_loops(run_paper_experiment):
    result = run_paper_experiment("table1")
    data = result.data

    speedups = data["speedups"]
    assert len(speedups) == 6
    # The batched backend wins on every 12-residue target.
    assert all(s > 1.0 for s in speedups)
    # The speedups are consistent across targets: the spread stays within
    # the same factor-of-two band the paper reports (37.3x .. 54.8x).
    assert max(speedups) / min(speedups) < 2.5
    assert data["mean_speedup"] > 1.0

"""Ablation benchmark — proposals with and without CCD loop closure.

Section III.C of the paper: mutated conformations generally violate the
loop-closure condition, so CCD is applied to every proposal.  This ablation
measures how much closure CCD restores compared to raw proposals.
"""


def test_ablation_ccd(run_paper_experiment):
    result = run_paper_experiment("ablation_ccd")
    data = result.data

    # Essentially no raw proposal satisfies the closure condition...
    assert data["raw_closed_fraction"] < 0.05
    # ...while CCD closes a large share of them and slashes the mean error.
    assert data["ccd_closed_fraction"] > data["raw_closed_fraction"]
    assert data["closed_mean_error"] < data["raw_mean_error"] / 2
    assert data["mean_ccd_sweeps"] > 0.0

"""Benchmark FIG4 — computational time vs population size, CPU vs CPU-GPU.

Paper series (Fig. 4, 1cex(40:51), 512 to 15,360 threads, 100 iterations):
CPU time grows ~30x over the sweep while the CPU-GPU time grows only 2.39x,
so the speedup increases with the population size (up to ~42x).
"""


def test_fig4_speedup_scaling(run_paper_experiment):
    result = run_paper_experiment("fig4")
    data = result.data

    speedups = data["speedups"]
    # The batched backend wins at every population size...
    assert all(s > 1.0 for s in speedups)
    # ...its advantage grows with the population size...
    assert speedups[-1] > speedups[0]
    # ...because scalar CPU time grows much faster than batched time.
    assert data["cpu_growth"] > data["gpu_growth"]

"""Ablation benchmark — scalar vs population-batched kernel evaluation.

Section IV.B of the paper: the components migrated to the GPU are exactly
the ones whose per-conformation cost can be amortised by evaluating the
whole population in lock-step.  This ablation times each kernel both ways.
"""


def test_ablation_batch_kernels(run_paper_experiment):
    result = run_paper_experiment("ablation_batch_kernels")
    data = result.data

    # The dominant kernel (CCD) benefits the most from batching.
    ccd = data["CCD"]
    assert ccd["batched"] < ccd["scalar"]
    # Summed over the kernels the paper migrates to the GPU, the batched
    # path wins.  Individual scoring kernels are allowed some slack: the
    # environment term of the VDW kernel is memory-bound, so its batched
    # advantage is small and can disappear at tiny populations.
    scalar_total = sum(data[k]["scalar"] for k in ("CCD", "EvalVDW", "EvalTRIP", "EvalDIST"))
    batched_total = sum(data[k]["batched"] for k in ("CCD", "EvalVDW", "EvalTRIP", "EvalDIST"))
    assert batched_total < scalar_total
    for key in ("EvalVDW", "EvalTRIP", "EvalDIST"):
        assert data[key]["batched"] <= data[key]["scalar"] * 2.5

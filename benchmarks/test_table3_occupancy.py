"""Benchmark TAB3 — registers per thread and multiprocessor occupancy.

Paper rows (Table III, GTX 280, 128-thread blocks, no shared memory):
[CCD]/[EvalDIST]/[EvalVDW] at 32 registers -> 50% occupancy, [EvalTRIP] at
20 registers -> 75%, the two [FitAssg] kernels at 8 and 5 registers -> 100%.
"""

from repro.experiments.occupancy_table import PAPER_TABLE3


def test_table3_occupancy(run_paper_experiment):
    result = run_paper_experiment("table3")
    data = result.data

    # This experiment is fully static, so it reproduces Table III exactly.
    assert data["matches_paper"] is True
    for kernel, (registers, paper_occupancy) in PAPER_TABLE3.items():
        assert data["registers_per_thread"][kernel] == registers
        assert abs(data["occupancies"][kernel] - paper_occupancy) < 1e-9

"""Benchmark TAB2 — GPU time per kernel and per memcpy category.

Paper rows (Table II, 1cex(40:51), 15,360 threads, 100 iterations):
[CCD] 75.2%, [EvalDIST] 14.3%, [EvalVDW] 8.39%, [EvalTRIP] 0.04%,
[FitAssg] 1.33% of GPU time; all memcpy categories together below ~0.7%.
"""


def test_table2_gpu_task_breakdown(run_paper_experiment):
    result = run_paper_experiment("table2")
    data = result.data
    fractions = data["kernel_fractions"]

    # CCD dominates the kernel time, as in the paper.
    assert data["dominant_kernel"] == "[CCD]"
    assert fractions["[CCD]"] > 0.5
    # The scoring kernels follow, with the table-lookup TRIPLET kernel
    # negligible compared to the distance and VDW kernels.
    assert fractions["[EvalTRIP]"] < fractions["[EvalDIST]"]
    assert fractions["[EvalTRIP]"] < fractions["[EvalVDW]"]
    # Host/device memory synchronisation stays a small fraction of GPU time.
    assert data["transfer_fraction"] < 0.1

"""Kernel-block-size sweep at the paper-scale population (15,360 members).

``SamplingConfig.kernel_block_size`` controls how many population members
each batched scoring kernel processes per chunk; the chunk size decides
whether the per-pair temporaries (squared distances, penalties, bin
indices) stay cache-resident.  This sweep times the two pair-heavy engine
kernels — the soft-sphere penalty reduction (EvalVDW's inner loop) and the
binned table sum (EvalDIST's) — across block sizes at the paper's 15,360
member population and asserts the measured shape:

* timings are flat through the small-block regime (the tuned default of
  128, the paper's threads per block, sits here);
* a *cache cliff* appears as blocks grow — at >= 2,048 members the pair
  temporaries spill out of cache and the same arithmetic runs ~1.5x
  slower or worse.

The tuned default is asserted to be on the good side of the cliff, so a
regression in the chunking (or an over-eager "bigger blocks are better"
change) fails this benchmark rather than silently slowing paper-scale
runs.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Sequence

import numpy as np

from repro.config import SamplingConfig
from repro.scoring.pairwise import (
    binned_table_sum,
    indexed_penalty_sum,
    squared_bin_edges,
)

#: Paper-scale population (120 complexes x 128 members).
PAPER_POPULATION = 15360

#: Loop length (residues) of the paper's hardest benchmark class.
LOOP_RESIDUES = 12

#: Swept block sizes: the flat regime, the default, and past the cliff.
BLOCK_SIZES: Sequence[int] = (32, 64, 128, 256, 512, 2048, PAPER_POPULATION)


def _median_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median of ``repeats`` timed calls, after one untimed warmup.

    The median (not the min) is deliberate: transient turbo/cache effects
    produce one-off *fast* outliers that a min would keep, and the
    assertions below compare block sizes against each other.
    """
    fn()  # warmup: first-touch allocations and frequency ramp
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def _sweep() -> Dict[int, float]:
    rng = np.random.default_rng(0)
    atoms = LOOP_RESIDUES * 4
    coords = rng.normal(scale=6.0, size=(PAPER_POPULATION, atoms, 3))
    first, second = np.triu_indices(atoms, k=4)
    sq_contacts = np.full(first.size, 9.0)
    sq_edges = squared_bin_edges(15.0, 30)
    tables = rng.normal(size=(first.size, sq_edges.shape[0]))

    totals: Dict[int, float] = {}
    for block in BLOCK_SIZES:
        vdw = _median_of(
            lambda: indexed_penalty_sum(
                coords, coords, first, second, sq_contacts, block_size=block
            )
        )
        dist = _median_of(
            lambda: binned_table_sum(
                coords, first, second, tables, sq_edges, block_size=block
            )
        )
        totals[block] = vdw + dist
    return totals


def test_block_size_cache_cliff():
    totals = _sweep()

    print()
    print(f"pair-kernel time vs block size at population {PAPER_POPULATION}:")
    for block, seconds in totals.items():
        marker = " <- tuned default" if block == SamplingConfig().kernel_block_size else ""
        print(f"  block {block:>6}: {seconds:8.3f} s{marker}")

    default = SamplingConfig().kernel_block_size
    assert default in totals, "the tuned default must be part of the sweep"

    best = min(totals.values())
    # The tuned default sits in the flat regime.  Unloaded, it is within a
    # few percent of the sweep's best point; the margin absorbs shared-CI
    # noise while still catching a default moved onto the cliff (where the
    # slowdown is 1.5x+).
    assert totals[default] <= best * 1.5, (
        f"default block {default} is off the flat regime: "
        f"{totals[default]:.3f}s vs best {best:.3f}s"
    )
    # The cache cliff is real: the monolithic whole-population chunk runs
    # the same arithmetic ~1.6-2x slower than the tuned default (2,048 is
    # already past the knee; the table above records the full shape).
    assert totals[PAPER_POPULATION] >= totals[default] * 1.35, (
        f"expected a cache cliff at the monolithic block: "
        f"{totals[PAPER_POPULATION]:.3f}s vs default {totals[default]:.3f}s"
    )

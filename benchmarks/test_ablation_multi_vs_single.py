"""Ablation benchmark — multi-scoring sampling vs single-objective optimisation.

Section II of the paper argues that sampling multiple scoring functions
(MOSCEM) is preferable to globally optimising one composite score: it
escapes single-function minima, tolerates individual-function deficiencies
and returns a diversified decoy set instead of one committed structure.
"""


def test_ablation_multi_vs_single(run_paper_experiment):
    result = run_paper_experiment("ablation_multi_vs_single")
    data = result.data

    # The multi-objective sampler exposes several structurally distinct
    # candidates; the single-objective baseline commits to exactly one.
    assert data["moscem_distinct"] >= 1
    assert data["moscem_best_rmsd"] > 0.0
    assert data["baseline_committed_rmsd"] >= data["baseline_best_rmsd"]
    # The decoy-set decision metric of MOSCEM can never be worse than the
    # best structure it contains.
    assert data["moscem_front_best_rmsd"] >= data["moscem_best_rmsd"]

"""Serving-layer benchmark: cache hit latency, fleet drain, lease cost.

Measures the three numbers the serving layer is sold on and writes them
to ``BENCH_serve.json`` at the repo root (committed, so reviewers can
diff serving-regression claims against the tree):

* **cache hit latency** — wall time for a daemon pass to fill an entire
  identical campaign from the content-addressed cache, per cell, versus
  the execution time it displaced;
* **drain throughput** — cells/second for a single daemon versus a
  three-daemon fleet leasing cells out of one store;
* **lease overhead** — raw claim/release round trips per second, plus
  the relative wall-time cost of running a drain with leasing enabled.

Run with ``pytest -m benchmarks benchmarks/test_serve_bench.py -s``.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

from repro.api import Session, campaign, drain_once
from repro.config import SamplingConfig
from repro.runtime import RunStore
from repro.serve.cache import ResultCache
from repro.serve.leases import LeaseManager

from conftest import bench_scale

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_serve.json"

_SCALED = {
    "smoke": SamplingConfig(population_size=16, n_complexes=4, iterations=4),
    "default": SamplingConfig(population_size=32, n_complexes=8, iterations=10),
    "paper": SamplingConfig(population_size=64, n_complexes=16, iterations=30),
}

QUIET = lambda _line: None  # noqa: E731


def _grid(campaign_id: str, config: SamplingConfig):
    return campaign(
        campaign_id,
        ["1cex(40:51)", "1akz(181:192)"],
        {"bench": config},
        seeds=2,
        backends="gpu",
        base_seed=29,
        checkpoint_every=4,
        workers=1,
    )


def _drain_fleet(store, handle, n_daemons: int, cache=None) -> float:
    """Wall time for ``n_daemons`` leased threads to drain the store."""

    def run(daemon_id):
        manager = LeaseManager(store, daemon_id=daemon_id, ttl_seconds=30.0)
        while not handle.status().complete:
            drain_once(store, workers=1, progress=QUIET, leases=manager, cache=cache)
            time.sleep(0.005)

    threads = [
        threading.Thread(target=run, args=(f"bench-{i}",), daemon=True)
        for i in range(n_daemons)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    return time.perf_counter() - start


def test_serve_benchmarks(tmp_path, capsys):
    scale = bench_scale()
    config = _SCALED.get(scale, _SCALED["smoke"])
    cache = ResultCache(tmp_path / "cache")
    report: dict = {"scale": scale, "config": {
        "population_size": config.population_size,
        "n_complexes": config.n_complexes,
        "iterations": config.iterations,
        "n_cells": 4,
    }}

    # --- single-daemon execution (primes the cache) --------------------
    store_one = RunStore(str(tmp_path / "one"))
    handle = Session(store_one).submit(_grid("bench-exec", config))
    start = time.perf_counter()
    primed = drain_once(store_one, workers=1, progress=QUIET, cache=cache)
    exec_seconds = time.perf_counter() - start
    assert primed.executed == 4 and primed.failed == 0
    n_cells = primed.executed
    report["drain"] = {
        "n_cells": n_cells,
        "single_daemon_seconds": round(exec_seconds, 4),
        "single_daemon_cells_per_s": round(n_cells / exec_seconds, 3),
    }

    # --- cache hit latency: an identical campaign fills in O(ms) -------
    store_hit = RunStore(str(tmp_path / "hit"))
    hit_handle = Session(store_hit).submit(_grid("bench-hit", config))
    start = time.perf_counter()
    hits = drain_once(store_hit, workers=1, progress=QUIET, cache=cache)
    hit_seconds = time.perf_counter() - start
    assert hits.cache_hits == n_cells and hits.executed == 0
    assert hit_handle.status().complete
    per_cell_ms = 1000.0 * hit_seconds / n_cells
    report["cache"] = {
        "fill_pass_seconds": round(hit_seconds, 4),
        "hit_latency_ms_per_cell": round(per_cell_ms, 3),
        "speedup_vs_execution": round(exec_seconds / hit_seconds, 1),
    }
    # The headline property: a hit costs milliseconds, not sampler time.
    assert hit_seconds < exec_seconds / 5.0

    # --- three-daemon fleet drain over one store -----------------------
    store_fleet = RunStore(str(tmp_path / "fleet"))
    fleet_handle = Session(store_fleet).submit(_grid("bench-fleet", config))
    fleet_seconds = _drain_fleet(store_fleet, fleet_handle, n_daemons=3)
    assert fleet_handle.status().complete
    report["drain"]["three_daemon_seconds"] = round(fleet_seconds, 4)
    report["drain"]["three_daemon_cells_per_s"] = round(
        n_cells / fleet_seconds, 3
    )

    # --- lease protocol overhead ---------------------------------------
    store_lease = RunStore(str(tmp_path / "leases"))
    manager = LeaseManager(store_lease, daemon_id="bench", ttl_seconds=30.0)
    store_lease.create_run(_grid("bench-lease", config), exist_ok=True)
    rounds = 200
    start = time.perf_counter()
    for i in range(rounds):
        index = i % n_cells
        assert manager.claim("bench-lease", index)
        manager.renew("bench-lease", index)
        manager.release("bench-lease", index)
    lease_seconds = time.perf_counter() - start
    ops_per_s = 3 * rounds / lease_seconds
    report["leases"] = {
        "claim_renew_release_ops_per_s": round(ops_per_s, 1),
        "round_trip_ms": round(1000.0 * lease_seconds / rounds, 4),
    }

    # A leased single-daemon drain of the same workload: relative cost.
    store_rel = RunStore(str(tmp_path / "rel"))
    rel_handle = Session(store_rel).submit(_grid("bench-rel", config))
    rel_manager = LeaseManager(store_rel, daemon_id="rel", ttl_seconds=30.0)
    start = time.perf_counter()
    rel = drain_once(store_rel, workers=1, progress=QUIET, leases=rel_manager)
    leased_seconds = time.perf_counter() - start
    assert rel.executed == n_cells and rel_handle.status().complete
    report["leases"]["drain_overhead_fraction"] = round(
        max(0.0, leased_seconds / exec_seconds - 1.0), 4
    )

    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    with capsys.disabled():
        print(f"\nwrote {OUTPUT}")
        print(json.dumps(report, indent=2, sort_keys=True))

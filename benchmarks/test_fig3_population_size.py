"""Benchmark FIG3 — population size vs front diversity and best-decoy RMSD.

Paper series (Fig. 3, 1akz(181:192), populations 100/1,000/10,000, 32
trajectories): the average number of distinct non-dominated structures grows
with the population size, and the average best-decoy RMSD improves.
"""


def test_fig3_population_size(run_paper_experiment):
    result = run_paper_experiment("fig3")
    data = result.data

    populations = data["populations"]
    distinct = data["mean_distinct_non_dominated"]
    mean_best = data["mean_best_rmsd"]

    assert len(populations) >= 3
    assert populations == sorted(populations)
    # Larger populations find more structurally distinct non-dominated
    # conformations (the paper's main Fig. 3 observation)...
    assert distinct[-1] > distinct[0]
    # ...and the best decoy does not get worse.
    assert mean_best[-1] <= mean_best[0] + 0.25

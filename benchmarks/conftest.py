"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper by running the
corresponding experiment driver at its ``smoke`` scale (seconds per
experiment rather than the hours of the paper-scale parameters) exactly once
under ``pytest-benchmark``, printing the same rows/series the paper reports,
and asserting the qualitative *shape* of the result (who wins, what
dominates, where the hard case is).

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SCALE=default`` (or ``paper``) to rerun every benchmark at
a larger scale.

Every test collected from this directory carries the ``benchmarks`` marker
(registered in ``pytest.ini``), so CI can split fast unit-test feedback from
the experiment reruns: ``pytest -m "not benchmarks"`` for the former,
``pytest -m benchmarks`` for the latter.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import run_experiment

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Tag every test under ``benchmarks/`` with the ``benchmarks`` marker."""
    for item in items:
        try:
            path = pathlib.Path(str(item.fspath)).resolve()
        except OSError:  # pragma: no cover - exotic collectors
            continue
        if _BENCH_DIR in path.parents:
            item.add_marker(pytest.mark.benchmarks)


def bench_scale() -> str:
    """Scale preset used by the benchmarks (``smoke`` unless overridden)."""
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture
def run_paper_experiment(benchmark, scale):
    """Run one experiment driver exactly once under the benchmark timer.

    Returns the :class:`~repro.experiments.base.ExperimentResult`; the
    rendered tables are echoed so the benchmark log contains the same rows
    the paper's table/figure reports.
    """

    def _run(experiment_id: str, seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        return result

    return _run

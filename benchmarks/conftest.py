"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper by running the
corresponding experiment driver at its ``smoke`` scale (seconds per
experiment rather than the hours of the paper-scale parameters) exactly once
under ``pytest-benchmark``, printing the same rows/series the paper reports,
and asserting the qualitative *shape* of the result (who wins, what
dominates, where the hard case is).

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SCALE=default`` (or ``paper``) to rerun every benchmark at
a larger scale.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_experiment


def bench_scale() -> str:
    """Scale preset used by the benchmarks (``smoke`` unless overridden)."""
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture
def run_paper_experiment(benchmark, scale):
    """Run one experiment driver exactly once under the benchmark timer.

    Returns the :class:`~repro.experiments.base.ExperimentResult`; the
    rendered tables are echoed so the benchmark log contains the same rows
    the paper's table/figure reports.
    """

    def _run(experiment_id: str, seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        return result

    return _run

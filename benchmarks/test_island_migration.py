"""Acceptance benchmark of the island-migration archipelago.

At a *fixed total iteration budget* (identical sampling configurations,
identical seeds), runs each target's replicate trajectories twice — as
independent cells and as a ring archipelago — and reports Pareto-front
quality of the merged decoy sets per target:

* **front coverage** — number of non-dominated merged decoys;
* **hypervolume** — mean 2-D hypervolume over the objective pairs,
  measured against a shared reference point so the two conditions are
  directly comparable;
* **spread** — mean pairwise distance between normalised front members.

Also proves the no-op path: with ``MigrationPolicy.none()`` the campaign
reproduces the independent cells bit-for-bit.

Run with ``pytest -m benchmarks benchmarks/test_island_migration.py -s``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.analysis.pareto import hypervolume_2d, spread
from repro.analysis.reporting import TextTable
from repro.api import MigrationPolicy, Session, campaign
from repro.config import SamplingConfig
from repro.moscem.dominance import non_dominated_mask

TARGETS = ["1cex(40:51)", "1xyz(813:824)"]

BENCH_CONFIG = SamplingConfig(
    population_size=32, n_complexes=4, iterations=10
)


def _grid(campaign_id: str, migration) -> "campaign":
    return campaign(
        campaign_id,
        TARGETS,
        {"bench": BENCH_CONFIG},
        seeds=3,
        backends="gpu",
        base_seed=17,
        checkpoint_every=2,
        workers=1,
        migration=migration,
    )


def _front(result, target) -> np.ndarray:
    scores = result.merged_decoys(target).scores_matrix()
    if scores.size == 0:
        return scores.reshape(0, 0)
    return scores[non_dominated_mask(scores)]


def _mean_pairwise_hypervolume(front: np.ndarray, reference: np.ndarray) -> float:
    if front.shape[0] == 0:
        return 0.0
    volumes = [
        hypervolume_2d(front[:, [i, j]], reference[[i, j]])
        for i, j in itertools.combinations(range(front.shape[1]), 2)
    ]
    return float(np.mean(volumes))


@pytest.fixture(scope="module")
def results(tmp_path_factory):
    """Both conditions, every target, one shared iteration budget."""
    root = tmp_path_factory.mktemp("island-bench")
    independent = Session(str(root / "independent"), workers=1).run(
        _grid("bench-independent", None)
    )
    ring = Session(str(root / "ring"), workers=1).run(
        _grid(
            "bench-ring",
            MigrationPolicy(topology="ring", cadence=1, elite_k=2),
        )
    )
    return {"independent": independent, "ring": ring}


class TestIslandMigrationBenchmark:
    def test_front_quality_and_report(self, results, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        table = TextTable(
            headers=[
                "target",
                "condition",
                "decoys",
                "front coverage",
                "hypervolume",
                "spread",
                "migration events",
            ],
            title="Island migration vs independent cells "
            f"(pop {BENCH_CONFIG.population_size} x "
            f"{BENCH_CONFIG.iterations} iters x 3 islands)",
            float_digits=3,
        )
        metrics = {}
        for target in TARGETS:
            fronts = {
                name: _front(result, target) for name, result in results.items()
            }
            # One shared reference point per target: the per-objective
            # maximum over both conditions' fronts (plus a hair of margin
            # so boundary members contribute volume).
            stacked = np.vstack([f for f in fronts.values() if f.size])
            reference = stacked.max(axis=0) * 1.01 + 1e-9
            for name, result in results.items():
                front = fronts[name]
                metrics[(target, name)] = {
                    "decoys": len(result.merged_decoys(target)),
                    "coverage": front.shape[0],
                    "hypervolume": _mean_pairwise_hypervolume(front, reference),
                    "spread": spread(front) if front.size else 0.0,
                    "events": len(result.migration_events(target)),
                }
                table.add_row(
                    target,
                    name,
                    metrics[(target, name)]["decoys"],
                    metrics[(target, name)]["coverage"],
                    metrics[(target, name)]["hypervolume"],
                    metrics[(target, name)]["spread"],
                    metrics[(target, name)]["events"],
                )
        print()
        print(table.render())

        for target in TARGETS:
            independent = metrics[(target, "independent")]
            ring = metrics[(target, "ring")]
            # Sanity of the measurement itself.
            assert independent["events"] == 0
            assert ring["events"] > 0
            for row in (independent, ring):
                assert row["coverage"] > 0
                assert np.isfinite(row["hypervolume"]) and row["hypervolume"] >= 0.0
                assert np.isfinite(row["spread"])
            # Fixed budget: both conditions harvested from the same number
            # of trajectories; migration must not collapse the decoy yield.
            assert ring["decoys"] > 0

    def test_noop_policy_reproduces_independent_cells(
        self, results, tmp_path_factory
    ):
        noop = Session(
            str(tmp_path_factory.mktemp("island-bench-noop")), workers=1
        ).run(_grid("bench-noop", MigrationPolicy.none()))
        independent = results["independent"]
        for target in TARGETS:
            a = independent.merged_decoys(target)
            b = noop.merged_decoys(target)
            assert len(a) == len(b)
            for da, db in zip(a, b):
                assert np.array_equal(da.torsions, db.torsions)
                assert np.array_equal(da.coords, db.coords)
                assert np.array_equal(da.scores, db.scores)
                assert da.rmsd == db.rmsd
        assert noop.migration_ledger == []

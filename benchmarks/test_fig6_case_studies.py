"""Benchmark FIG6 — best decoys for the easy and the buried hard target.

Paper result (Fig. 6): 3pte(91:101) is modelled to 0.42 A RMSD while the
deeply buried 1xyz(813:824) is the only target that stays above 2 A
(2.15 A); the burial (dense environment, clashes in every scoring function)
is what makes it hard.
"""


def test_fig6_case_studies(run_paper_experiment):
    result = run_paper_experiment("fig6")
    data = result.data

    # Both decoy sets are non-empty.
    assert data["easy_n_decoys"] >= 1
    assert data["hard_n_decoys"] >= 1
    # The easy/hard contrast holds: the buried loop is modelled worse than
    # the exposed one under identical sampling effort.
    assert data["contrast_holds"]
    assert data["hard_best_rmsd"] > data["easy_best_rmsd"]
    # The hard case is hard because it is buried: its environment is denser.
    assert data["hard_environment_atoms"] > data["easy_environment_atoms"]

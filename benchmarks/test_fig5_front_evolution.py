"""Benchmark FIG5 — evolution of the non-dominated set during sampling.

Paper series (Fig. 5, 5pti(7:17)): 7 non-dominated conformations at
initialisation, 19 after 20 iterations, 63 after 100 iterations; native-like
(low-RMSD) conformations only appear late in the run.
"""


def test_fig5_front_evolution(run_paper_experiment):
    result = run_paper_experiment("fig5")
    data = result.data

    counts = data["non_dominated_counts"]
    best_rmsds = data["best_rmsds"]

    assert len(counts) == 3
    # The front never collapses: a diversified set of compromises of the
    # three scoring functions survives to the end of the trajectory.  (At
    # this reduced scale the *size* of the front fluctuates rather than
    # growing 7 -> 19 -> 63 as in the paper, because the Ramachandran-seeded
    # initial population already starts with a sizeable front; see
    # EXPERIMENTS.md.)
    assert all(c >= 1 for c in counts)
    assert counts[-1] >= 5
    # The quality of the front improves: native-like conformations appear as
    # sampling proceeds, so the best front RMSD does not deteriorate.
    assert best_rmsds[-1] <= best_rmsds[0] + 0.1

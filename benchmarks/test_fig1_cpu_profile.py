"""Benchmark FIG1 — CPU-only implementation time profile.

Paper series (Fig. 1, 1cex(40:51), population 15,360, 100 iterations):
loop closure + scoring functions take ~99% of the CPU wall-clock time
(84.15% + 14.79%), everything else ~1%.
"""


def test_fig1_cpu_profile(run_paper_experiment):
    result = run_paper_experiment("fig1")
    data = result.data

    # Shape check: the heavy kernels dominate, exactly the observation that
    # motivates migrating them to the GPU.
    assert data["heavy_fraction"] > 0.9
    assert data["closure_fraction"] > data["scoring_fraction"]
    assert data["other_fraction"] < 0.1

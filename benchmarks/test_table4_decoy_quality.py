"""Benchmark TAB4 — decoy quality over the long-loop benchmark targets.

Paper rows (Table IV, 53 targets, 1,000 decoys each): 41/53 targets (77.4%)
obtain a decoy within 1.0 A of the native and 48/53 (90.6%) within 1.5 A;
shorter loops are solved more often than longer ones, and the buried
1xyz(813:824) is the single failure case.

At the benchmark's reduced sampling effort the absolute solved fractions are
lower, so the shape checks are made against relaxed thresholds while the
rendered table still reports the paper's 1.0 A / 1.5 A columns side by side
with the measured ones.
"""


def test_table4_decoy_quality(run_paper_experiment):
    result = run_paper_experiment("table4")
    data = result.data

    assert data["n_targets"] >= 5
    fractions = data["solved_fractions"]
    # Counts at relaxed thresholds dominate counts at strict ones (monotone
    # in the threshold), and at least some targets are solved at the most
    # relaxed resolution even at this reduced sampling effort.
    thresholds = sorted(fractions)
    for lo, hi in zip(thresholds, thresholds[1:]):
        assert fractions[lo] <= fractions[hi]
    assert fractions[thresholds[-1]] > 0.0
    # Every target produced a non-empty decoy set with a finite best RMSD.
    best_rmsds = data["best_rmsds"]
    assert all(v < float("inf") for v in best_rmsds.values())
    # The buried target remains a hard case whenever it is included: it is
    # never the best-modelled target of the sweep.
    if "1xyz(813:824)" in best_rmsds and len(best_rmsds) > 1:
        others = [v for k, v in best_rmsds.items() if k != "1xyz(813:824)"]
        assert best_rmsds["1xyz(813:824)"] >= min(others)

"""Paper-scale kernel benchmark across the xp facade's backend tiers.

Times the hot kernels that PR 8 ported onto the :mod:`repro.xp` facade —
the soft-sphere penalty reduction (EvalVDW's inner loop), the binned
table gather (EvalDIST's), the strength-fitness dominance pass, batched
NeRF backbone construction and batched CCD closure — at the paper's
15,360-member population (120 complexes x 128 members), through three
routes:

* **numpy** — the public wrappers' direct path, the repo's determinism
  baseline;
* **numpy bundle** — the same generic kernels routed through a
  numpy-bound :class:`~repro.xp.dispatch.KernelBundle`, measuring the
  facade's dispatch overhead (it must be negligible);
* **jax jit** — the kernels bound to the JAX namespace and jit-compiled,
  timed after a compile warmup with ``block_until_ready``.  Recorded as
  ``null`` when the jax wheel is not installed (the committed baseline
  file comes from a CPU-only environment), so diffs of this file on a
  JAX-capable runner fill the column in rather than changing shape.

Results land in ``BENCH_kernels.json`` at the repo root (committed, so
facade-overhead and jit-speedup claims can be diffed against the tree).

Run with ``pytest -m benchmarks benchmarks/test_kernel_bench.py -s``.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.closure.ccd import ccd_close_batch
from repro.geometry.nerf import build_backbone_batch
from repro.loops.targets import make_target
from repro.moscem.dominance import strength_fitness
from repro.scoring.pairwise import (
    binned_table_sum,
    indexed_penalty_sum,
    squared_bin_edges,
)
from repro.xp import bind_kernels, block_until_ready, has_jax, numpy_kernels

from conftest import bench_scale

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_kernels.json"

#: Paper-scale population (120 complexes x 128 members) — fixed across
#: scale presets: the point of this file is the paper-scale comparison.
PAPER_POPULATION = 15360

#: Loop length (residues) of the paper's hardest benchmark class.
LOOP_RESIDUES = 12

#: Timed repeats per kernel (median taken), by scale preset.
_REPEATS = {"smoke": 3, "default": 5, "paper": 9}


def _median_of(fn: Callable[[], object], repeats: int) -> float:
    """Median of ``repeats`` timed calls after one untimed warmup."""
    fn()  # warmup: first-touch allocations, jit compilation, ramp
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def _problem():
    """One paper-scale input set shared by every kernel timing."""
    rng = np.random.default_rng(0)
    atoms = LOOP_RESIDUES * 4
    coords = rng.normal(scale=6.0, size=(PAPER_POPULATION, atoms, 3))
    first, second = np.triu_indices(atoms, k=4)
    sq_contacts = np.full(first.size, 9.0)
    sq_edges = squared_bin_edges(15.0, 30)
    tables = rng.normal(size=(first.size, sq_edges.shape[0]))
    scores = rng.normal(size=(PAPER_POPULATION, 3))
    target = make_target("bench", 1, LOOP_RESIDUES, seed=5)
    torsions = rng.uniform(-np.pi, np.pi, size=(PAPER_POPULATION, 2 * LOOP_RESIDUES))
    return {
        "coords": coords,
        "first": first,
        "second": second,
        "sq_contacts": sq_contacts,
        "sq_edges": sq_edges,
        "tables": tables,
        "scores": scores,
        "target": target,
        "torsions": torsions,
    }


def _kernel_suite(p, kernels) -> Dict[str, Callable[[], object]]:
    """The timed calls, identical work through whichever bundle."""
    return {
        "soft_sphere_penalty": lambda: indexed_penalty_sum(
            p["coords"], p["coords"], p["first"], p["second"], p["sq_contacts"],
            kernels=kernels,
        ),
        "binned_table_sum": lambda: binned_table_sum(
            p["coords"], p["first"], p["second"], p["tables"], p["sq_edges"],
            kernels=kernels,
        ),
        "strength_fitness": lambda: strength_fitness(
            p["scores"], kernels=kernels
        ),
        "ccd_close_batch": lambda: ccd_close_batch(
            p["torsions"], p["target"], max_iterations=2, tolerance=0.25,
            kernels=kernels,
        ),
    }


def _time_suite(p, kernels, repeats: int) -> Dict[str, float]:
    return {
        name: round(_median_of(fn, repeats), 4)
        for name, fn in sorted(_kernel_suite(p, kernels).items())
    }


def _time_jax(p, repeats: int) -> Optional[Dict[str, float]]:
    """Jit-tier timings, or ``None`` without the wheel."""
    if not has_jax():
        return None
    kernels = bind_kernels("jax")
    timings = _time_suite(p, kernels, repeats)
    # NeRF chain build is jit-only (no kernels= route on the wrapper):
    # time the bound kernel directly, synchronised on its outputs.
    target = p["target"]
    timings["build_backbone_chain"] = round(
        _median_of(
            lambda: block_until_ready(
                kernels.build_backbone_chain(
                    p["torsions"], target.n_anchor, target.end_phi
                )
            ),
            repeats,
        ),
        4,
    )
    return timings


def test_kernel_tiers_paper_scale():
    repeats = _REPEATS.get(bench_scale(), 3)
    p = _problem()

    numpy_direct = _time_suite(p, None, repeats)
    numpy_bundle = _time_suite(p, numpy_kernels(), repeats)
    numpy_direct["build_backbone_chain"] = round(
        _median_of(
            lambda: build_backbone_batch(
                p["torsions"], p["target"].n_anchor, p["target"].end_phi
            ),
            repeats,
        ),
        4,
    )
    jax_jit = _time_jax(p, repeats)

    report = {
        "scale": bench_scale(),
        "config": {
            "population": PAPER_POPULATION,
            "loop_residues": LOOP_RESIDUES,
            "repeats": repeats,
        },
        "jax_available": has_jax(),
        "numpy_seconds": numpy_direct,
        "numpy_bundle_seconds": numpy_bundle,
        "jax_jit_seconds": jax_jit,
    }
    OUTPUT.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")

    print()
    print(f"kernel timings at population {PAPER_POPULATION} ({repeats} repeats):")
    for name in sorted(set(numpy_direct) | set(numpy_bundle)):
        direct = numpy_direct.get(name)
        bundle = numpy_bundle.get(name)
        jit = (jax_jit or {}).get(name)
        row = f"  {name:>22}: numpy {direct:8.4f}s"
        if bundle is not None:
            row += f"  bundle {bundle:8.4f}s"
        row += f"  jit {jit:8.4f}s" if jit is not None else "  jit      n/a"
        print(row)
    print(f"wrote {OUTPUT.name}")

    # The facade's dispatch layer must be invisible at paper scale: the
    # bundle route re-runs the identical numpy kernels, so anything past
    # a modest margin is overhead the facade itself introduced.  CCD's
    # bundle route intentionally trades the subset optimisation for a
    # masked full-population kernel (the jit-compatible formulation), so
    # it carries a wider but still bounded allowance.
    for name, direct in numpy_direct.items():
        bundle = numpy_bundle.get(name)
        if bundle is None:
            continue
        allowance = 3.0 if name == "ccd_close_batch" else 1.6
        assert bundle <= max(direct * allowance, direct + 0.05), (
            f"{name}: bundle route {bundle:.4f}s vs direct {direct:.4f}s "
            f"exceeds the {allowance:.1f}x facade-overhead allowance"
        )

    if jax_jit is not None:
        # On a jit tier every kernel must at least stay in the same
        # ballpark as eager numpy (compile time is excluded by warmup).
        for name, seconds in jax_jit.items():
            direct = numpy_direct.get(name)
            if direct is not None:
                assert seconds <= direct * 5.0, (
                    f"{name}: jit path {seconds:.4f}s is pathologically "
                    f"slower than numpy {direct:.4f}s"
                )

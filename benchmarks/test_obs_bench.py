"""Observability benchmark: what does tracing cost a drain?

Drains the same campaign with tracing off and tracing on (min of N
repetitions each, fresh stores every time so no run resumes another's
checkpoints) and writes the relative overhead to ``BENCH_obs.json`` at
the repo root (committed, so reviewers can diff tracing-cost claims
against the tree).  The acceptance gate is the tentpole's promise:
**a traced drain stays within 3% of an untraced one** — spans piggyback
on the checkpoint cadence and the kernel ledger the sampler keeps
anyway, so tracing adds bookkeeping, not measurement.

Also measured, because they are the other always-on costs: metric
increments per second (the counters stay on unconditionally) and the
per-cell wall cost of persisting trace documents.

Run with ``pytest -m benchmarks benchmarks/test_obs_bench.py -s``.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.api import Session, campaign, drain_once
from repro.config import SamplingConfig
from repro.obs.metrics import MetricsRegistry
from repro.runtime import RunStore

from conftest import bench_scale

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_obs.json"

_SCALED = {
    "smoke": SamplingConfig(population_size=16, n_complexes=4, iterations=6),
    "default": SamplingConfig(population_size=32, n_complexes=8, iterations=12),
    "paper": SamplingConfig(population_size=64, n_complexes=16, iterations=30),
}

#: Drain repetitions per arm; min-of-N suppresses scheduler noise.
_REPEATS = {"smoke": 3, "default": 3, "paper": 5}

#: The acceptance ceiling on traced-drain overhead.
MAX_OVERHEAD_FRACTION = 0.03

QUIET = lambda _line: None  # noqa: E731


def _grid(campaign_id: str, config: SamplingConfig):
    return campaign(
        campaign_id,
        ["1cex(40:51)", "1akz(181:192)"],
        {"bench": config},
        seeds=2,
        backends="gpu",
        base_seed=43,
        checkpoint_every=2,
        workers=1,
    )


def _drain_seconds(root: pathlib.Path, campaign_id: str, config, trace: bool) -> float:
    """Wall time of one full drain of a fresh store."""
    store = RunStore(str(root))
    Session(store).submit(_grid(campaign_id, config))
    start = time.perf_counter()
    report = drain_once(store, workers=1, progress=QUIET, trace=trace)
    seconds = time.perf_counter() - start
    assert report.executed == 4 and report.failed == 0
    if trace:
        assert store.has_shard_trace(campaign_id, 0)
    return seconds


def test_obs_benchmarks(tmp_path, capsys):
    scale = bench_scale()
    config = _SCALED.get(scale, _SCALED["smoke"])
    repeats = _REPEATS.get(scale, 3)
    report: dict = {
        "scale": scale,
        "config": {
            "population_size": config.population_size,
            "n_complexes": config.n_complexes,
            "iterations": config.iterations,
            "n_cells": 4,
            "repeats": repeats,
        },
    }

    # --- traced vs untraced drains, interleaved, min of N --------------
    plain_times, traced_times = [], []
    for rep in range(repeats):
        plain_times.append(
            _drain_seconds(tmp_path / f"plain-{rep}", "bench-plain", config, False)
        )
        traced_times.append(
            _drain_seconds(tmp_path / f"traced-{rep}", "bench-traced", config, True)
        )
    plain, traced = min(plain_times), min(traced_times)
    overhead = traced / plain - 1.0
    report["tracing"] = {
        "untraced_drain_seconds": round(plain, 4),
        "traced_drain_seconds": round(traced, 4),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
    }
    # The tentpole gate: tracing rides within 3% of an untraced drain.
    assert overhead <= MAX_OVERHEAD_FRACTION, (
        f"traced drain {traced:.3f}s exceeds untraced {plain:.3f}s "
        f"by {100 * overhead:.1f}% (> {100 * MAX_OVERHEAD_FRACTION:.0f}%)"
    )

    # --- trace document size (what the status channel carries) ---------
    store = RunStore(str(tmp_path / "traced-0"))
    sizes = [
        store.trace_path("bench-traced", index).stat().st_size for index in range(4)
    ]
    report["tracing"]["trace_bytes_per_cell"] = round(sum(sizes) / len(sizes))

    # --- metric increment throughput (counters stay on) -----------------
    registry = MetricsRegistry()
    counter = registry.counter("bench_ops_total", "benchmark counter")
    rounds = 200_000
    start = time.perf_counter()
    for _ in range(rounds):
        counter.inc(outcome="executed")
    inc_seconds = time.perf_counter() - start
    report["metrics"] = {
        "counter_incs_per_s": round(rounds / inc_seconds, 1),
        "inc_cost_ns": round(1e9 * inc_seconds / rounds, 1),
    }

    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    with capsys.disabled():
        print(f"\nwrote {OUTPUT}")
        print(json.dumps(report, indent=2, sort_keys=True))
